"""Unit tests for the message-level application runtime."""

import pytest

from repro.core.dca import analyze_application
from repro.errors import SimulationError
from repro.sim.runtime import ApplicationRuntime
from repro.workloads.generator import RequestClass


REQUEST = RequestClass("go", "start", {"x": 5})


class TestPlainExecution:
    def test_pipeline_trace_counts(self, pipeline_app):
        runtime = ApplicationRuntime(pipeline_app)
        trace = runtime.execute_request(REQUEST)
        assert trace.component_messages == {"A": 1, "B": 1, "C": 1}
        assert trace.responses == 1
        assert trace.total_messages() == 4  # external + 2 internal + response
        assert trace.depth == 3

    def test_plain_runtime_charges_no_instrumentation(self, pipeline_app):
        runtime = ApplicationRuntime(pipeline_app)
        trace = runtime.execute_request(REQUEST)
        assert sum(trace.component_instr_ms.values()) == 0.0
        assert sum(trace.component_instr_ops.values()) == 0

    def test_unknown_request_type(self, pipeline_app):
        runtime = ApplicationRuntime(pipeline_app)
        with pytest.raises(SimulationError):
            runtime.execute_request(RequestClass("bad", "nope", {}))

    def test_state_persists_across_requests(self, pipeline_app):
        runtime = ApplicationRuntime(pipeline_app)
        runtime.execute_request(REQUEST)
        t2 = runtime.execute_request(REQUEST)
        # A's accumulator doubles: second response sees acc == 10.
        response = [m for m in t2.messages if m.dest == "__client__"][0]
        assert response.fields["v"] == 20  # (5+5) * 2

    def test_reset_state(self, pipeline_app):
        runtime = ApplicationRuntime(pipeline_app)
        runtime.execute_request(REQUEST)
        runtime.reset_state()
        t2 = runtime.execute_request(REQUEST)
        response = [m for m in t2.messages if m.dest == "__client__"][0]
        assert response.fields["v"] == 10

    def test_signature_deterministic(self, pipeline_app):
        runtime = ApplicationRuntime(pipeline_app)
        t1 = runtime.execute_request(REQUEST)
        t2 = runtime.execute_request(REQUEST)
        assert t1.signature == t2.signature

    def test_message_guard(self, pipeline_app):
        runtime = ApplicationRuntime(pipeline_app, max_messages_per_request=2)
        with pytest.raises(SimulationError, match="exceeded"):
            runtime.execute_request(REQUEST)


class TestInstrumentedExecution:
    def test_instrumented_trace_reports_costs(self, pipeline_app):
        dca = analyze_application(pipeline_app)
        runtime = ApplicationRuntime(pipeline_app, dca_result=dca)
        trace = runtime.execute_request(REQUEST, sampled=True)
        assert sum(trace.component_instr_ms.values()) > 0
        # A persists `acc` (1 store) + emits (1 getInfo); B/C only getInfo.
        assert trace.component_instr_ops["A"] == 2
        assert trace.component_instr_ops["B"] == 1
        assert trace.component_instr_ops["C"] == 1

    def test_unsampled_costs_nothing(self, pipeline_app):
        dca = analyze_application(pipeline_app)
        runtime = ApplicationRuntime(pipeline_app, dca_result=dca)
        trace = runtime.execute_request(REQUEST, sampled=False)
        assert sum(trace.component_instr_ms.values()) == 0.0

    def test_cause_chain_links_messages(self, pipeline_app):
        dca = analyze_application(pipeline_app)
        runtime = ApplicationRuntime(pipeline_app, dca_result=dca)
        trace = runtime.execute_request(REQUEST, sampled=True)
        by_type = {m.msg_type: m for m in trace.messages}
        assert by_type["start"].uid in by_type["mid"].cause_uids
        assert by_type["mid"].uid in by_type["end"].cause_uids
        assert by_type["end"].uid in by_type["done"].cause_uids

    def test_fanout_counts(self, search_app):
        from repro.apps.universal_search import WEB_SHARDS

        runtime = ApplicationRuntime(search_app)
        trace = runtime.execute_request(
            RequestClass("web", "search", {"kind": "web", "terms": "q"})
        )
        assert trace.component_messages["query-index"] == WEB_SHARDS
