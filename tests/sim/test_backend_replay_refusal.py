"""The replay fast path must refuse journaling store backends.

Converged replay freezes a telemetry delta and stops feeding the store;
with a journaling backend that would leave the durable log silently
incomplete (records for replayed executions simply never written).  The
eligibility gate lives in ``supports_snapshot_replay`` and is enforced
twice: at :class:`~repro.sim.events.ReplayIngestor` construction and
re-checked at the freeze cutover.  These tests pin both seams plus the
event runner's fallback to full-fidelity ingestion.
"""

import inspect

import pytest

from repro.apps.catalog import load_scenario
from repro.evalx.experiment import ExperimentConfig, build_simulator
from repro.sim.events import EventDrivenRunner, ReplayIngestor
from repro.telemetry import MetricsRegistry


def _simulator(backend, tmp_path, engine="event"):
    config = ExperimentConfig(
        duration_minutes=8, seed=7, engine=engine, store_backend=backend,
        store_dir=str(tmp_path / backend) if backend == "log" else None,
    )
    return build_simulator(
        load_scenario("hedwig"), "DCA-10%", config, registry=MetricsRegistry()
    )


def test_supports_snapshot_replay_is_backend_gated(tmp_path):
    assert _simulator("memory", tmp_path).dca.tracker.supports_snapshot_replay
    for backend in ("log", "shared"):
        simulator = _simulator(backend, tmp_path)
        try:
            assert not simulator.dca.tracker.supports_snapshot_replay, backend
        finally:
            simulator.dca.tracker.store.close()


def test_replay_ingestor_refuses_journaling_backend(tmp_path):
    simulator = _simulator("log", tmp_path)
    try:
        with pytest.raises(ValueError, match="snapshot replay"):
            ReplayIngestor(simulator)
    finally:
        simulator.dca.tracker.store.close()


def test_event_runner_falls_back_to_full_ingestion(tmp_path):
    simulator = _simulator("log", tmp_path, engine="event")
    runner = EventDrivenRunner(simulator)
    assert not runner._replay_eligible
    simulator.dca.tracker.store.close()

    eligible = EventDrivenRunner(_simulator("memory", tmp_path, engine="event"))
    assert eligible._replay_eligible


def test_freeze_cutover_rechecks_eligibility():
    """Introspection pin: the cutover re-reads ``supports_snapshot_replay``.

    Construction-time checks alone would miss a store/backend swap after
    the ingestor was built; the freeze condition must consult the
    tracker's *live* eligibility.  Pinned on source (the check has no
    behavioural trace in an eligible run) so a refactor that drops the
    re-check fails here, not in a silent-data-loss postmortem.
    """
    source = inspect.getsource(ReplayIngestor.ingest)
    assert "supports_snapshot_replay" in source


def test_frozen_run_would_skip_journal_writes(tmp_path):
    """Why the gate exists: replay executes nothing, so nothing journals.

    A memory-backend event run cuts over to replay; if that were allowed
    on the log backend, every post-cutover execution would be absent
    from the log.  Assert the premise: the eligible run really does stop
    live-executing after convergence.
    """
    simulator = _simulator("memory", tmp_path, engine="event")
    simulator.config.duration_minutes = 120
    simulator.run()
    ingestor = simulator.event_runner.ingestor
    assert ingestor is not None and ingestor.replaying
    assert ingestor.replayed_executions > 0
