"""EventQueue ordering semantics: the event engine's determinism root."""

from repro.sim.events import (
    P_CLUSTER_TRANSITION,
    P_DELAYED_DELIVERY,
    P_INTERVAL,
    P_NODE_CRASH,
    EventQueue,
)


def drain(queue):
    out = []
    while True:
        event = queue.pop()
        if event is None:
            break
        out.append(event)
    return out


class TestEventQueue:
    def test_empty_queue(self):
        q = EventQueue()
        assert q.pop() is None
        assert q.peek_time() is None
        assert len(q) == 0
        assert not q

    def test_orders_by_time(self):
        q = EventQueue()
        q.push(3.0, P_INTERVAL, "interval", 3)
        q.push(1.0, P_INTERVAL, "interval", 1)
        q.push(2.0, P_INTERVAL, "interval", 2)
        assert [e[0] for e in drain(q)] == [1.0, 2.0, 3.0]

    def test_priority_breaks_time_ties(self):
        """Same-timestamp events drain in the tick loop's intra-step order."""
        q = EventQueue()
        q.push(5.0, P_INTERVAL, "interval", None)
        q.push(5.0, P_DELAYED_DELIVERY, "delayed-delivery", None)
        q.push(5.0, P_CLUSTER_TRANSITION, "cluster-transition", None)
        q.push(5.0, P_NODE_CRASH, "node-crash", None)
        kinds = [e[3] for e in drain(q)]
        assert kinds == [
            "cluster-transition",
            "node-crash",
            "delayed-delivery",
            "interval",
        ]

    def test_insertion_order_breaks_full_ties(self):
        """Equal (time, priority) events drain in insertion order."""
        q = EventQueue()
        for i in range(20):
            q.push(1.0, P_INTERVAL, "interval", i)
        assert [e[4] for e in drain(q)] == list(range(20))

    def test_payloads_never_compared(self):
        """Unorderable payloads must not break the heap (seq breaks ties)."""
        q = EventQueue()
        q.push(1.0, P_INTERVAL, "interval", {"a": 1})
        q.push(1.0, P_INTERVAL, "interval", {"b": 2})
        q.push(1.0, P_INTERVAL, "interval", None)
        assert [e[4] for e in drain(q)] == [{"a": 1}, {"b": 2}, None]

    def test_peek_and_counts(self):
        q = EventQueue()
        q.push(2.0, P_INTERVAL, "interval", None)
        q.push(1.0, P_NODE_CRASH, "node-crash", None)
        assert q.peek_time() == 1.0
        assert len(q) == 2
        assert q.pushed == 2
        assert q
        q.pop()
        q.pop()
        assert q.pushed == 2  # lifetime counter, not current size
