"""Event-engine edge cases: the corners where tick/event could diverge.

The scenario-suite parity tests (``test_engine_parity.py``) cover the
paper configurations; these tests pin down the boundary conditions the
discrete-event engine must handle exactly like the tick oracle:

* one-interval runs (nothing ever matures or delivers),
* non-unit ``interval_minutes`` (boundary snapping, rate conversion),
* fault delays landing exactly on an interval boundary,
* the event-clocked ``_inject_failures`` roll (pinned seeded counts),
* the converged-replay cutover machinery itself.
"""

import pytest

from repro.apps.catalog import load_scenario
from repro.errors import SimulationError
from repro.evalx.experiment import ExperimentConfig, build_simulator
from repro.faults.plan import FaultPlan
from repro.sim.engine import SimulationConfig
from repro.sim.parity import diff_results, diff_snapshots
from repro.telemetry import MetricsRegistry


def _run_pair(
    scenario_name,
    manager,
    duration_minutes,
    seed=7,
    interval_minutes=None,
    node_failure_rate=None,
    failure_seed=0,
    fault_plan=None,
    path_timeout_minutes=None,
):
    """Run one config under both engines; return {engine: (sim, result, snap)}."""
    out = {}
    for engine in ("tick", "event"):
        sim_config = SimulationConfig()
        if interval_minutes is not None:
            sim_config.interval_minutes = interval_minutes
        if node_failure_rate is not None:
            sim_config.node_failure_rate_per_min = node_failure_rate
            sim_config.failure_seed = failure_seed
        config = ExperimentConfig(
            duration_minutes=duration_minutes,
            seed=seed,
            sim=sim_config,
            engine=engine,
        )
        registry = MetricsRegistry()
        sim = build_simulator(
            load_scenario(scenario_name),
            manager,
            config=config,
            registry=registry,
            fault_plan=fault_plan,
            path_timeout_minutes=path_timeout_minutes,
        )
        result = sim.run()
        out[engine] = (sim, result, registry.snapshot())
    return out


def _assert_pair_parity(pair):
    _, tick_result, tick_snap = pair["tick"]
    _, event_result, event_snap = pair["event"]
    diffs = diff_results(tick_result, event_result)
    assert not diffs, diffs
    diffs = diff_snapshots(tick_snap, event_snap)
    assert not diffs, diffs
    assert pair["tick"][0].nodes_failed_total == pair["event"][0].nodes_failed_total


class TestDurationEdges:
    def test_single_interval_run(self):
        pair = _run_pair("hedwig", "DCA-100%", duration_minutes=1)
        _assert_pair_parity(pair)
        assert len(pair["event"][1].records) == 1
        assert pair["event"][1].records[0].time_minutes == 0.0

    def test_zero_duration_rejected(self):
        with pytest.raises(SimulationError):
            SimulationConfig(duration_minutes=0)


class TestNonUnitIntervals:
    """interval_minutes != 1.0: snapping and rate conversion must agree."""

    @pytest.mark.parametrize("interval_minutes", [0.5, 2.0])
    def test_parity(self, interval_minutes):
        pair = _run_pair(
            "hedwig",
            "DCA-10%",
            duration_minutes=30,
            interval_minutes=interval_minutes,
        )
        _assert_pair_parity(pair)

    @pytest.mark.parametrize(
        "interval_minutes,expected_intervals", [(0.5, 60), (2.0, 15)]
    )
    def test_record_spacing(self, interval_minutes, expected_intervals):
        pair = _run_pair(
            "hedwig",
            "CloudWatch",
            duration_minutes=30,
            interval_minutes=interval_minutes,
        )
        records = pair["event"][1].records
        assert len(records) == expected_intervals
        times = [r.time_minutes for r in records]
        assert times == [k * interval_minutes for k in range(expected_intervals)]

    def test_half_interval_with_faults(self):
        plan = FaultPlan(seed=5, message_delay_rate=0.4, message_delay_minutes=0.7)
        pair = _run_pair(
            "hedwig",
            "DCA-100%",
            duration_minutes=20,
            interval_minutes=0.5,
            fault_plan=plan,
            path_timeout_minutes=5.0,
        )
        _assert_pair_parity(pair)


class TestBoundaryDelays:
    def test_delay_landing_exactly_on_boundary(self):
        """delay == interval length: ETA falls exactly on the next boundary."""
        plan = FaultPlan(seed=11, message_delay_rate=0.6, message_delay_minutes=1.0)
        pair = _run_pair(
            "hedwig",
            "DCA-100%",
            duration_minutes=40,
            fault_plan=plan,
            path_timeout_minutes=5.0,
        )
        _assert_pair_parity(pair)
        event_sim = pair["event"][0]
        runner = event_sim.event_runner
        assert runner.events_processed["delayed-delivery"] > 0
        metrics = pair["event"][2]["metrics"]
        delivered = metrics["tracker.delayed_messages_delivered"]["value"]
        assert delivered > 0

    def test_fractional_delay(self):
        """A mid-interval ETA must snap up to the *next* boundary, like tick."""
        plan = FaultPlan(seed=11, message_delay_rate=0.6, message_delay_minutes=1.5)
        pair = _run_pair(
            "hedwig",
            "DCA-100%",
            duration_minutes=40,
            fault_plan=plan,
            path_timeout_minutes=5.0,
        )
        _assert_pair_parity(pair)
        assert pair["event"][0].event_runner.events_processed["delayed-delivery"] > 0


class TestEventClockedFailureRolls:
    """_inject_failures consumes the event clock, not whole-minute ticks.

    The counts are pinned so any change to the roll schedule (the
    ``dt = now - last_roll`` accounting) shows up as a diff, and both
    engines must reproduce them exactly.
    """

    @pytest.mark.parametrize(
        "failure_seed,rate,expected_failed",
        [(3, 0.05, 68), (11, 0.02, 30)],
    )
    def test_pinned_seeded_counts(self, failure_seed, rate, expected_failed):
        pair = _run_pair(
            "hedwig",
            "ElasticRMI",
            duration_minutes=60,
            node_failure_rate=rate,
            failure_seed=failure_seed,
        )
        _assert_pair_parity(pair)
        assert pair["tick"][0].nodes_failed_total == expected_failed
        assert pair["event"][0].nodes_failed_total == expected_failed


class TestReplayCutover:
    def test_replay_engages_on_long_plain_runs(self):
        pair = _run_pair("marketcetera", "DCA-100%", duration_minutes=160)
        _assert_pair_parity(pair)
        runner = pair["event"][0].event_runner
        assert runner.ingestor is not None
        assert runner.ingestor.replaying
        assert runner.ingestor.replayed_executions > 0
        assert runner.ingestor.cutover_minute is not None

    def test_replay_disabled_under_faults(self):
        """Fault-injected runs must take the full-fidelity path."""
        plan = FaultPlan(seed=3, message_drop_rate=0.1)
        pair = _run_pair(
            "hedwig",
            "DCA-100%",
            duration_minutes=40,
            fault_plan=plan,
            path_timeout_minutes=5.0,
        )
        _assert_pair_parity(pair)
        assert pair["event"][0].event_runner.ingestor is None

    def test_replay_disabled_for_baseline_managers(self):
        pair = _run_pair("hedwig", "CloudWatch", duration_minutes=40)
        _assert_pair_parity(pair)
        assert pair["event"][0].event_runner.ingestor is None
