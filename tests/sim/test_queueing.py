"""Unit and property tests for the queueing approximations."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim.queueing import (
    MAX_INFLATION,
    RHO_CLAMP,
    latency_inflation,
    nodes_required,
    serve_interval,
    utilization,
)


class TestUtilization:
    def test_basic_ratio(self):
        assert utilization(500, 1000) == 0.5

    def test_can_exceed_one(self):
        assert utilization(2000, 1000) == 2.0

    def test_negative_demand_rejected(self):
        with pytest.raises(SimulationError):
            utilization(-1, 100)

    def test_zero_capacity_rejected(self):
        with pytest.raises(SimulationError):
            utilization(10, 0)


class TestLatencyInflation:
    def test_idle_is_one(self):
        assert latency_inflation(0.0) == 1.0

    def test_mm1_curve(self):
        assert latency_inflation(0.5) == pytest.approx(2.0)
        assert latency_inflation(0.75) == pytest.approx(4.0)

    def test_clamped_at_saturation(self):
        assert latency_inflation(RHO_CLAMP) >= MAX_INFLATION

    def test_grows_past_saturation(self):
        assert latency_inflation(2.0) > latency_inflation(1.2)

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            latency_inflation(-0.1)

    @given(st.floats(0.0, 0.97), st.floats(0.0, 0.97))
    def test_monotonic(self, a, b):
        lo, hi = sorted((a, b))
        assert latency_inflation(lo) <= latency_inflation(hi)


class TestServeInterval:
    def test_underloaded_serves_everything(self):
        r = serve_interval(demand_ms=500, backlog_ms=0, capacity_ms=1000)
        assert r.served_ms == 500
        assert r.backlog_ms == 0
        assert r.rho == 0.5

    def test_overload_accumulates_backlog(self):
        r = serve_interval(demand_ms=1500, backlog_ms=0, capacity_ms=1000)
        assert r.served_ms == 1000
        assert r.backlog_ms == 500

    def test_backlog_drains(self):
        r = serve_interval(demand_ms=200, backlog_ms=500, capacity_ms=1000)
        assert r.backlog_ms == 0
        assert r.served_ms == 700

    def test_utilization_includes_backlog(self):
        r = serve_interval(demand_ms=500, backlog_ms=500, capacity_ms=1000)
        assert r.rho == 1.0

    def test_negative_backlog_rejected(self):
        with pytest.raises(SimulationError):
            serve_interval(100, -1, 1000)

    @given(
        st.floats(0, 1e6),
        st.floats(0, 1e6),
        st.floats(1, 1e6),
    )
    def test_conservation(self, demand, backlog, capacity):
        """Property: served + carried backlog equals offered work."""
        r = serve_interval(demand, backlog, capacity)
        assert r.served_ms + r.backlog_ms == pytest.approx(demand + backlog)
        assert r.served_ms <= capacity + 1e-9
        assert r.backlog_ms >= 0


class TestNodesRequired:
    def test_zero_demand_needs_zero(self):
        assert nodes_required(0, 1000, 0.75) == 0

    def test_exact_fit(self):
        assert nodes_required(750, 1000, 0.75) == 1
        assert nodes_required(751, 1000, 0.75) == 2

    def test_validation(self):
        with pytest.raises(SimulationError):
            nodes_required(10, 0, 0.75)
        with pytest.raises(SimulationError):
            nodes_required(10, 100, 0.0)

    @given(st.floats(0.01, 1e6), st.floats(1, 1e4), st.floats(0.1, 1.0))
    def test_requirement_is_sufficient(self, demand, cap, util):
        """Property: the returned node count really keeps ρ ≤ target."""
        n = nodes_required(demand, cap, util)
        assert demand <= n * cap * util + 1e-6
