"""Unit tests for the fluent builder API."""

import pytest

from repro.errors import IRError
from repro.lang.builder import AppBuilder, BlockBuilder, ComponentBuilder, call, const, field, var
from repro.lang.ir import CLIENT, Assign, Call, Const, Field, If, Send, Var, While


class TestShorthands:
    def test_var(self):
        assert var("x") == Var("x")

    def test_field(self):
        assert field("m", "f") == Field("m", "f")

    def test_const(self):
        assert const(3) == Const(3)

    def test_call(self):
        c = call("sqrt", var("x"))
        assert isinstance(c, Call)
        assert c.func == "sqrt"


class TestBlockBuilder:
    def test_assign_and_send(self):
        b = BlockBuilder()
        b.assign("x", 1).send("out", "B", {"v": var("x")})
        stmts = b.statements()
        assert isinstance(stmts[0], Assign)
        assert isinstance(stmts[1], Send)

    def test_if_context_manager_commits(self):
        b = BlockBuilder()
        with b.if_(var("c") > 0) as branch:
            branch.then.assign("x", 1)
            branch.orelse.assign("x", 2)
        (stmt,) = b.statements()
        assert isinstance(stmt, If)
        assert len(stmt.then_body) == 1
        assert len(stmt.else_body) == 1

    def test_branch_double_commit_rejected(self):
        b = BlockBuilder()
        branch = b.if_(var("c") > 0)
        branch.done()
        with pytest.raises(IRError):
            branch.done()

    def test_while_context_manager(self):
        b = BlockBuilder()
        with b.while_(var("i") < 3) as loop:
            loop.body.assign("i", var("i") + 1)
        (stmt,) = b.statements()
        assert isinstance(stmt, While)
        assert len(stmt.body) == 1

    def test_nested_structures(self):
        b = BlockBuilder()
        with b.if_(var("c") > 0) as branch:
            with branch.then.while_(var("i") < 2) as loop:
                loop.body.send("tick", "B")
        (outer,) = b.statements()
        (inner,) = outer.then_body
        assert isinstance(inner, While)
        assert isinstance(inner.body[0], Send)

    def test_skip(self):
        b = BlockBuilder()
        b.skip()
        assert len(b.statements()) == 1


class TestComponentBuilder:
    def test_state_and_handler(self):
        cb = ComponentBuilder("A", service_cost=7.0).state("x", 5)
        with cb.on("go", "m") as h:
            h.assign("x", field("m", "v"))
        comp = cb.build()
        assert comp.state == {"x": 5}
        assert comp.service_cost == 7.0
        assert "go" in comp.handlers

    def test_duplicate_state_rejected(self):
        cb = ComponentBuilder("A").state("x", 0)
        with pytest.raises(IRError):
            cb.state("x", 1)

    def test_prebuilt_handler_body(self):
        cb = ComponentBuilder("A").handler("go", "m", [Assign("x", 1)])
        comp = cb.build()
        assert comp.handler_for("go").body[0].target == "x"

    def test_default_param_name(self):
        cb = ComponentBuilder("A")
        with cb.on("go") as h:
            h.send("out", CLIENT)
        comp = cb.build()
        assert comp.handler_for("go").param == "m"


class TestAppBuilder:
    def test_build_valid_app(self, pipeline_app):
        assert set(pipeline_app.components) == {"A", "B", "C"}
        assert pipeline_app.entry_points == {"start": "A"}

    def test_duplicate_entry_rejected(self):
        ab = AppBuilder("t").entry("go", "A")
        with pytest.raises(IRError):
            ab.entry("go", "B")

    def test_builder_accepts_component_builders(self):
        cb = ComponentBuilder("A")
        with cb.on("go", "m") as h:
            h.send("done", CLIENT)
        app = AppBuilder("t").component(cb).entry("go", "A").build()
        assert "A" in app.components
