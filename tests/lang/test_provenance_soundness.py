"""Differential soundness of *dynamic* provenance (getInfo).

Property: if perturbing the payload of an earlier message changes a later
emission, then that earlier message's uid must appear in the emission's
cause set.  This is the dynamic counterpart of the static-slicing
soundness test — together they establish that DCA's combination of
``V_tr`` persistence and invocation-local taint captures every direct
cause the paper's definition requires.
"""

from hypothesis import given, settings, strategies as st

from repro.core.dca import analyze_component
from repro.lang.builder import ComponentBuilder, field, var
from repro.lang.interpreter import Interpreter, ReplicaState
from repro.lang.ir import BinOp, CLIENT, EXTERNAL, as_expr, default_library
from repro.lang.message import Message, UidFactory

STATE_VARS = ("a", "b", "c")


@st.composite
def two_handler_component(draw):
    """A component where h1 writes state and h2 may emit."""
    cb = ComponentBuilder("P")
    for name in STATE_VARS:
        cb.state(name, draw(st.integers(0, 3)))

    def rand_expr(depth=0):
        choice = draw(st.integers(0, 4 if depth < 2 else 2))
        if choice == 0:
            return var(draw(st.sampled_from(STATE_VARS)))
        if choice == 1:
            return field("m", "x")
        if choice == 2:
            return draw(st.integers(0, 9))
        left, right = rand_expr(depth + 1), rand_expr(depth + 1)
        return BinOp(draw(st.sampled_from(["+", "-", "*"])), as_expr(left), as_expr(right))

    with cb.on("h1", "m") as h:
        for _ in range(draw(st.integers(1, 3))):
            h.assign(draw(st.sampled_from(STATE_VARS)), rand_expr())
    with cb.on("h2", "m") as h:
        if draw(st.booleans()):
            branch = h.if_(rand_expr() > draw(st.integers(0, 5)))
            branch.then.send("out", CLIENT, {"v": rand_expr()})
            branch.orelse.send("out", CLIENT, {"v": rand_expr()})
            branch.done()
        else:
            h.send("out", CLIENT, {"v": rand_expr()})
    return cb.build()


def _run(component, x1, x2):
    """Deliver h1(x=x1) then h2(x=x2); return (payloads, causes, uids)."""
    analysis = analyze_component(component)
    interp = Interpreter(component, default_library(), tracked_vars=set(analysis.v_tr))
    state = ReplicaState.from_component(component)
    uids = UidFactory("10.0.0.1", 1)
    ext = UidFactory("client", 0)
    m1 = Message(ext.next_uid(), "h1", EXTERNAL, "P", {"x": x1})
    m2 = Message(ext.next_uid(), "h2", EXTERNAL, "P", {"x": x2})
    interp.handle(state, m1, uids)
    outcome = interp.handle(state, m2, uids)
    payloads = [tuple(sorted(m.fields.items())) for m in outcome.emitted]
    causes = [m.cause_uids for m in outcome.emitted]
    return payloads, causes, (m1.uid, m2.uid)


class TestDynamicProvenanceSoundness:
    @given(two_handler_component(), st.integers(0, 9), st.integers(10, 500))
    @settings(max_examples=120, deadline=None)
    def test_influential_message_is_in_cause_set(self, component, x, perturbation):
        baseline, causes, (uid1, uid2) = _run(component, x, x)
        perturbed, _, _ = _run(component, x + perturbation, x)
        if baseline != perturbed:
            # m1's payload demonstrably influenced the emission(s): its uid
            # must be among the direct causes of at least one emission in
            # the run where it mattered.
            all_causes = set()
            for c in causes:
                all_causes |= c
            assert uid1 in all_causes, (
                "perturbing msg1 changed the output but msg1 is not in any cause set"
            )

    @given(two_handler_component(), st.integers(0, 9))
    @settings(max_examples=60, deadline=None)
    def test_triggering_message_always_in_cause_set(self, component, x):
        _, causes, (_, uid2) = _run(component, x, x)
        for cause_set in causes:
            assert uid2 in cause_set  # the message that triggered the handler
