"""Unit tests for CFG construction, post-dominators, control dependence."""

import pytest

from repro.errors import AnalysisError
from repro.lang.cfg import ENTRY, EXIT, build_cfg, control_dependences, postdominators
from repro.lang.ir import Assign, Handler, If, Send, Var, While


def _cfg(body):
    return build_cfg(Handler("go", "m", body))


class TestBuildCfg:
    def test_straight_line(self):
        s1, s2 = Assign("x", 1), Assign("y", 2)
        cfg = _cfg([s1, s2])
        assert cfg.succ[ENTRY] == {s1.sid}
        assert cfg.succ[s1.sid] == {s2.sid}
        assert cfg.succ[s2.sid] == {EXIT}

    def test_empty_body_wires_entry_to_exit(self):
        cfg = _cfg([])
        assert cfg.succ[ENTRY] == {EXIT}

    def test_if_diamond(self):
        t, e = Assign("x", 1), Assign("x", 2)
        cond = If(Var("c") > 0, [t], [e])
        tail = Assign("y", 3)
        cfg = _cfg([cond, tail])
        assert cfg.succ[cond.sid] == {t.sid, e.sid}
        assert cfg.succ[t.sid] == {tail.sid}
        assert cfg.succ[e.sid] == {tail.sid}

    def test_if_without_else_falls_through(self):
        t = Assign("x", 1)
        cond = If(Var("c") > 0, [t])
        tail = Assign("y", 3)
        cfg = _cfg([cond, tail])
        assert cfg.succ[cond.sid] == {t.sid, tail.sid}

    def test_while_back_edge(self):
        body = Assign("i", Var("i") + 1)
        loop = While(Var("i") < 3, [body])
        cfg = _cfg([loop])
        assert body.sid in cfg.succ[loop.sid]
        assert loop.sid in cfg.succ[body.sid]
        assert EXIT in cfg.succ[loop.sid]

    def test_statement_reuse_rejected(self):
        shared = Assign("x", 1)
        with pytest.raises(AnalysisError):
            _cfg([shared, shared])

    def test_reverse_postorder_starts_at_entry(self):
        s1, s2 = Assign("x", 1), Assign("y", 2)
        cfg = _cfg([s1, s2])
        rpo = cfg.reverse_postorder()
        assert rpo[0] == ENTRY
        assert rpo.index(s1.sid) < rpo.index(s2.sid)


class TestPostdominators:
    def test_exit_postdominates_everything(self):
        s1 = Assign("x", 1)
        cfg = _cfg([s1])
        pd = postdominators(cfg)
        for node in cfg.nodes:
            assert EXIT in pd[node]

    def test_join_postdominates_branches(self):
        t, e = Assign("x", 1), Assign("x", 2)
        cond = If(Var("c") > 0, [t], [e])
        join = Assign("y", 3)
        cfg = _cfg([cond, join])
        pd = postdominators(cfg)
        assert join.sid in pd[t.sid]
        assert join.sid in pd[e.sid]
        assert join.sid in pd[cond.sid]

    def test_branch_does_not_postdominate_condition(self):
        t, e = Assign("x", 1), Assign("x", 2)
        cond = If(Var("c") > 0, [t], [e])
        cfg = _cfg([cond])
        pd = postdominators(cfg)
        assert t.sid not in pd[cond.sid]


class TestControlDependence:
    def test_branch_stmts_depend_on_condition(self):
        t, e = Assign("x", 1), Assign("x", 2)
        cond = If(Var("c") > 0, [t], [e])
        cfg = _cfg([cond, Assign("y", 3)])
        cd = control_dependences(cfg)
        assert cond.sid in cd[t.sid]
        assert cond.sid in cd[e.sid]

    def test_join_not_dependent_on_condition(self):
        t, e = Assign("x", 1), Assign("x", 2)
        cond = If(Var("c") > 0, [t], [e])
        join = Assign("y", 3)
        cfg = _cfg([cond, join])
        cd = control_dependences(cfg)
        assert cond.sid not in cd[join.sid]

    def test_loop_body_depends_on_header(self):
        body = Assign("i", Var("i") + 1)
        loop = While(Var("i") < 3, [body])
        cfg = _cfg([loop])
        cd = control_dependences(cfg)
        assert loop.sid in cd[body.sid]

    def test_loop_header_self_dependence(self):
        body = Assign("i", Var("i") + 1)
        loop = While(Var("i") < 3, [body])
        cfg = _cfg([loop])
        cd = control_dependences(cfg)
        assert loop.sid in cd[loop.sid]

    def test_nested_if_dependence_chain(self):
        inner_stmt = Send("out", "B")
        inner = If(Var("d") > 0, [inner_stmt])
        outer = If(Var("c") > 0, [inner])
        cfg = _cfg([outer])
        cd = control_dependences(cfg)
        assert inner.sid in cd[inner_stmt.sid]
        assert outer.sid in cd[inner.sid]
        # Transitive closure is the slicer's job, not the CFG's.
        assert outer.sid not in cd[inner_stmt.sid]

    def test_straight_line_has_no_control_deps(self):
        s1, s2 = Assign("x", 1), Assign("y", 2)
        cfg = _cfg([s1, s2])
        cd = control_dependences(cfg)
        assert cd[s1.sid] == set()
        assert cd[s2.sid] == set()
