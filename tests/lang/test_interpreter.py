"""Unit tests for the provenance-tracking interpreter."""

import pytest

from repro.errors import InterpreterError
from repro.lang.builder import ComponentBuilder, call, field, var
from repro.lang.interpreter import Interpreter, ReplicaState
from repro.lang.ir import CLIENT, EXTERNAL, default_library
from repro.lang.message import Message, UidFactory


def _make(component, tracked=None, track_all=False):
    interp = Interpreter(component, default_library(), tracked_vars=tracked, track_all=track_all)
    return interp, ReplicaState.from_component(component)


def _msg(msg_type, fields, seq=1, sampled=True):
    return Message(
        uid=UidFactory("client", 0).next_uid() if seq == 1 else None,
        msg_type=msg_type,
        src=EXTERNAL,
        dest="X",
        fields=fields,
        sampled=sampled,
    )


def _uids():
    return UidFactory("10.0.0.1", 1)


class TestEvaluation:
    def _run(self, build_handler, fields, state_vars=None, tracked=None):
        comp = ComponentBuilder("X")
        for name, value in (state_vars or {}).items():
            comp.state(name, value)
        build_handler(comp)
        component = comp.build()
        interp, state = _make(component, tracked=tracked)
        outcome = interp.handle(state, _msg("go", fields), _uids())
        return outcome, state

    def test_arithmetic(self):
        def h(comp):
            with comp.on("go", "m") as b:
                b.assign("z", field("m", "x") * 2 + 1)

        outcome, state = self._run(h, {"x": 10}, {"z": 0})
        assert state.values["z"] == 21

    def test_division_by_zero(self):
        def h(comp):
            with comp.on("go", "m") as b:
                b.assign("z", field("m", "x") / 0)

        with pytest.raises(InterpreterError, match="division by zero"):
            self._run(h, {"x": 1}, {"z": 0})

    def test_undefined_variable(self):
        def h(comp):
            with comp.on("go", "m") as b:
                b.assign("z", var("ghost"))

        with pytest.raises(InterpreterError, match="undefined variable"):
            self._run(h, {"x": 1}, {"z": 0})

    def test_missing_field(self):
        def h(comp):
            with comp.on("go", "m") as b:
                b.assign("z", field("m", "nope"))

        with pytest.raises(InterpreterError, match="no field"):
            self._run(h, {"x": 1}, {"z": 0})

    def test_string_concat_with_plus(self):
        def h(comp):
            with comp.on("go", "m") as b:
                b.assign("z", field("m", "s") + "!")

        _, state = self._run(h, {"s": "hi"}, {"z": ""})
        assert state.values["z"] == "hi!"

    def test_library_call(self):
        def h(comp):
            with comp.on("go", "m") as b:
                b.assign("z", call("sqrt", field("m", "x")))

        _, state = self._run(h, {"x": 81}, {"z": 0})
        assert state.values["z"] == 9.0

    def test_branching(self):
        def h(comp):
            with comp.on("go", "m") as b:
                with b.if_(field("m", "x") > 5) as br:
                    br.then.assign("z", 1)
                    br.orelse.assign("z", 2)

        _, state = self._run(h, {"x": 10}, {"z": 0})
        assert state.values["z"] == 1
        _, state = self._run(h, {"x": 3}, {"z": 0})
        assert state.values["z"] == 2

    def test_loop_executes(self):
        def h(comp):
            with comp.on("go", "m") as b:
                b.assign("i", 0)
                with b.while_(var("i") < field("m", "n")) as loop:
                    loop.body.assign("z", var("z") + 1)
                    loop.body.assign("i", var("i") + 1)

        _, state = self._run(h, {"n": 4}, {"z": 0})
        assert state.values["z"] == 4

    def test_loop_bound_enforced(self):
        def h(comp):
            with comp.on("go", "m") as b:
                with b.while_(1 < field("m", "x")) as loop:
                    loop.body.assign("z", var("z") + 1)

        comp = ComponentBuilder("X").state("z", 0)
        h(comp)
        component = comp.build()
        interp = Interpreter(component, default_library(), max_loop_iterations=10)
        state = ReplicaState.from_component(component)
        with pytest.raises(InterpreterError, match="exceeded"):
            interp.handle(state, _msg("go", {"x": 5}), _uids())

    def test_short_circuit_and(self):
        def h(comp):
            with comp.on("go", "m") as b:
                b.assign("z", (field("m", "x") > 0).and_(field("m", "x") / field("m", "x") > 0))

        _, state = self._run(h, {"x": 0}, {"z": 0})
        assert state.values["z"] is False  # second operand never evaluated


class TestProvenance:
    def _component(self):
        comp = ComponentBuilder("X").state("z", 0).state("untracked", 0)
        with comp.on("write", "m") as b:
            b.assign("z", field("m", "x"))
            b.assign("untracked", field("m", "x") + 1)
        with comp.on("emit", "m") as b:
            with b.if_(field("m", "go") > 0) as br:
                br.then.send("out", CLIENT, {"v": var("z")})
        return comp.build()

    def test_data_and_control_taint(self):
        component = self._component()
        interp, state = _make(component, tracked={"z"})
        uids = _uids()
        ext = UidFactory("client", 0)
        m1 = Message(ext.next_uid(), "write", EXTERNAL, "X", {"x": 7})
        m2 = Message(ext.next_uid(), "emit", EXTERNAL, "X", {"go": 1})
        interp.handle(state, m1, uids)
        outcome = interp.handle(state, m2, uids)
        (emitted,) = outcome.emitted
        assert emitted.cause_uids == frozenset({m1.uid, m2.uid})

    def test_untracked_variable_has_no_persisted_provenance(self):
        component = self._component()
        interp, state = _make(component, tracked={"z"})
        m1 = Message(UidFactory("c", 0).next_uid(), "write", EXTERNAL, "X", {"x": 7})
        interp.handle(state, m1, _uids())
        assert "z" in state.provenance
        assert "untracked" not in state.provenance

    def test_track_all_persists_everything(self):
        component = self._component()
        interp, state = _make(component, track_all=True)
        m1 = Message(UidFactory("c", 0).next_uid(), "write", EXTERNAL, "X", {"x": 7})
        interp.handle(state, m1, _uids())
        assert "untracked" in state.provenance

    def test_unsampled_message_skips_tracking(self):
        component = self._component()
        interp, state = _make(component, tracked={"z"})
        m1 = Message(
            UidFactory("c", 0).next_uid(), "write", EXTERNAL, "X", {"x": 7}, sampled=False
        )
        outcome = interp.handle(state, m1, _uids())
        assert outcome.tracked_writes == 0
        assert state.provenance == {}

    def test_emitted_message_without_provenance_has_no_causes(self):
        component = self._component()
        interp, state = _make(component)  # provenance disabled
        m2 = Message(UidFactory("c", 0).next_uid(), "emit", EXTERNAL, "X", {"go": 1})
        outcome = interp.handle(state, m2, _uids())
        (emitted,) = outcome.emitted
        assert emitted.cause_uids == frozenset()

    def test_instrumentation_op_counting(self):
        component = self._component()
        interp, state = _make(component, tracked={"z"})
        uids = _uids()
        m1 = Message(UidFactory("c", 0).next_uid(), "write", EXTERNAL, "X", {"x": 7})
        o1 = interp.handle(state, m1, uids)
        assert o1.tracked_writes == 1  # z only; `untracked` skipped
        assert o1.total_writes == 2
        assert o1.getinfo_ops == 0
        m2 = Message(UidFactory("c", 9).next_uid(), "emit", EXTERNAL, "X", {"go": 1})
        o2 = interp.handle(state, m2, uids)
        assert o2.getinfo_ops == 1
        assert o2.instrumentation_ops == o2.tracked_writes + o2.getinfo_ops

    def test_root_uid_propagates(self):
        component = self._component()
        interp, state = _make(component, tracked={"z"})
        root = UidFactory("c", 0).next_uid()
        m2 = Message(root, "emit", EXTERNAL, "X", {"go": 1})
        outcome = interp.handle(state, m2, _uids())
        assert outcome.emitted[0].root_uid == root

    def test_statements_executed_counted(self):
        component = self._component()
        interp, state = _make(component)
        m1 = Message(UidFactory("c", 0).next_uid(), "write", EXTERNAL, "X", {"x": 7})
        outcome = interp.handle(state, m1, _uids())
        assert outcome.statements_executed == 2
