"""Unit tests for the IR: expressions, statements, components, validation."""

import pytest

from repro.errors import IRError
from repro.lang.ir import (
    CLIENT,
    EXTERNAL,
    Application,
    Assign,
    BinOp,
    Call,
    Component,
    Const,
    Field,
    Handler,
    If,
    Send,
    Skip,
    UnaryOp,
    Var,
    While,
    as_expr,
    default_library,
)


class TestExpressions:
    def test_const_coercion(self):
        expr = as_expr(42)
        assert isinstance(expr, Const)
        assert expr.value == 42

    def test_expr_passthrough(self):
        v = Var("x")
        assert as_expr(v) is v

    def test_bad_coercion(self):
        with pytest.raises(IRError):
            as_expr([1, 2])

    def test_operator_overloading_builds_binop(self):
        expr = Var("x") + 1
        assert isinstance(expr, BinOp)
        assert expr.op == "+"
        assert isinstance(expr.right, Const)

    def test_reflected_operators(self):
        expr = 3 * Var("x")
        assert isinstance(expr, BinOp)
        assert isinstance(expr.left, Const)
        assert expr.left.value == 3

    def test_comparison_operators(self):
        assert (Var("x") > 5).op == ">"
        assert (Var("x") <= 5).op == "<="
        assert Var("x").eq(5).op == "=="
        assert Var("x").ne(5).op == "!="

    def test_logical_operators(self):
        assert Var("a").and_(Var("b")).op == "and"
        assert Var("a").or_(Var("b")).op == "or"

    def test_free_vars(self):
        expr = Var("x") + Var("y") * 2
        assert expr.free_vars() == {"x", "y"}

    def test_message_fields(self):
        expr = Field("m", "a") + Field("m", "b") + Var("z")
        assert expr.message_fields() == {("m", "a"), ("m", "b")}
        assert expr.free_vars() == {"z"}

    def test_call_collects_args(self):
        expr = Call("sqrt", Var("x") + 1)
        assert expr.free_vars() == {"x"}

    def test_unknown_binop_rejected(self):
        with pytest.raises(IRError):
            BinOp("**", Const(1), Const(2))

    def test_unknown_unaryop_rejected(self):
        with pytest.raises(IRError):
            UnaryOp("~", Const(1))

    def test_unary_free_vars(self):
        assert UnaryOp("-", Var("x")).free_vars() == {"x"}


class TestStatements:
    def test_assign_defs_uses(self):
        stmt = Assign("x", Var("y") + Field("m", "f"))
        assert stmt.defs() == {"x"}
        assert stmt.uses() == {"y"}
        assert stmt.message_fields() == {("m", "f")}

    def test_assign_requires_target(self):
        with pytest.raises(IRError):
            Assign("", Const(1))

    def test_if_children_and_walk(self):
        inner = Assign("x", 1)
        stmt = If(Var("c") > 0, [inner], [Skip()])
        walked = list(stmt.walk())
        assert stmt in walked
        assert inner in walked
        assert len(walked) == 3

    def test_while_uses(self):
        stmt = While(Var("i") < 10, [Assign("i", Var("i") + 1)])
        assert stmt.uses() == {"i"}

    def test_send_uses_fields(self):
        stmt = Send("msg", "B", {"v": Var("x") + Field("m", "y")})
        assert stmt.uses() == {"x"}
        assert stmt.message_fields() == {("m", "y")}

    def test_send_requires_type_and_dest(self):
        with pytest.raises(IRError):
            Send("", "B")
        with pytest.raises(IRError):
            Send("msg", "")

    def test_unique_sids(self):
        a, b = Skip(), Skip()
        assert a.sid != b.sid


class TestHandler:
    def test_sends_found_in_nested_blocks(self):
        h = Handler(
            "go",
            "m",
            [If(Var("c") > 0, [Send("a", "X")], [Send("b", "Y")])],
        )
        assert {s.msg_type for s in h.sends()} == {"a", "b"}

    def test_assigned_vars(self):
        h = Handler("go", "m", [Assign("x", 1), While(Var("x") < 3, [Assign("y", 2)])])
        assert h.assigned_vars() == {"x", "y"}

    def test_requires_names(self):
        with pytest.raises(IRError):
            Handler("", "m", [])
        with pytest.raises(IRError):
            Handler("go", "", [])


class TestComponent:
    def test_duplicate_handler_rejected(self):
        comp = Component("A", handlers=[Handler("go", "m", [])])
        with pytest.raises(IRError):
            comp.add_handler(Handler("go", "m", []))

    def test_reserved_names_rejected(self):
        for name in (CLIENT, EXTERNAL):
            with pytest.raises(IRError):
                Component(name)

    def test_nonpositive_service_cost_rejected(self):
        with pytest.raises(IRError):
            Component("A", service_cost=0)

    def test_handler_for_unknown(self):
        comp = Component("A")
        with pytest.raises(IRError):
            comp.handler_for("nope")

    def test_emitted_types(self):
        comp = Component("A", handlers=[Handler("go", "m", [Send("out", "B")])])
        assert comp.emitted_types() == {"out"}


class TestApplication:
    def _component(self, name, sends=()):
        body = [Send(t, d) for t, d in sends]
        return Component(name, handlers=[Handler("go", "m", body)])

    def test_valid_app(self):
        a = self._component("A", [("fwd", "B")])
        b = Component("B", handlers=[Handler("fwd", "m", [Send("done", CLIENT)])])
        app = Application("t", [a, b], {"go": "A"})
        assert app.front_end_components() == {"A"}

    def test_unknown_send_destination(self):
        a = self._component("A", [("fwd", "NOPE")])
        with pytest.raises(IRError, match="unknown component"):
            Application("t", [a], {"go": "A"})

    def test_destination_missing_handler(self):
        a = self._component("A", [("fwd", "B")])
        b = Component("B", handlers=[Handler("other", "m", [])])
        with pytest.raises(IRError, match="no handler"):
            Application("t", [a, b], {"go": "A"})

    def test_entry_point_must_exist(self):
        a = self._component("A")
        with pytest.raises(IRError, match="unknown component"):
            Application("t", [a], {"go": "Z"})

    def test_entry_point_needs_handler(self):
        a = self._component("A")
        with pytest.raises(IRError, match="no handler"):
            Application("t", [a], {"other": "A"})

    def test_duplicate_components_rejected(self):
        a1 = self._component("A")
        a2 = self._component("A")
        with pytest.raises(IRError, match="duplicate"):
            Application("t", [a1, a2], {"go": "A"})

    def test_unregistered_call_rejected(self):
        comp = Component(
            "A", handlers=[Handler("go", "m", [Assign("x", Call("mystery", 1))])]
        )
        with pytest.raises(IRError, match="unregistered"):
            Application("t", [comp], {"go": "A"})

    def test_impure_call_rejected(self):
        lib = default_library()
        lib.register("launch_missiles", lambda: None, pure=False)
        comp = Component(
            "A", handlers=[Handler("go", "m", [Assign("x", Call("launch_missiles"))])]
        )
        with pytest.raises(IRError, match="impure"):
            Application("t", [comp], {"go": "A"}, library=lib)

    def test_unknown_message_param_rejected(self):
        comp = Component(
            "A", handlers=[Handler("go", "m", [Assign("x", Field("other", "f"))])]
        )
        with pytest.raises(IRError, match="unknown message"):
            Application("t", [comp], {"go": "A"})

    def test_architectural_edges(self, pipeline_app):
        edges = pipeline_app.architectural_edges()
        assert ("A", "mid", "B") in edges
        assert ("B", "end", "C") in edges
        assert ("C", "done", CLIENT) in edges

    def test_requires_components_and_entries(self):
        with pytest.raises(IRError):
            Application("t", [], {"go": "A"})
        a = self._component("A")
        with pytest.raises(IRError):
            Application("t", [a], {})


class TestLibrary:
    def test_default_library_functions(self):
        lib = default_library()
        assert lib.lookup("sqrt")(16) == 4.0
        assert lib.lookup("max")(2, 5) == 5
        assert lib.lookup("concat")("a", "b") == "ab"
        assert lib.lookup("hash_bucket")("key", 10) in range(10)

    def test_lookup_unknown(self):
        with pytest.raises(IRError):
            default_library().lookup("nope")

    def test_purity_tracking(self):
        lib = default_library()
        assert lib.is_pure("sqrt")
        lib.register("impure_thing", lambda: None, pure=False)
        assert lib.is_registered("impure_thing")
        assert not lib.is_pure("impure_thing")
