"""Unit tests for reaching definitions, PDGs, and slicing summaries."""

import pytest

from repro.errors import AnalysisError
from repro.lang.cfg import ENTRY, build_cfg
from repro.lang.dependence import MSG_PARAM, HandlerPDG, build_pdgs, reaching_definitions
from repro.lang.ir import Assign, Component, Field, Handler, If, Send, Var, While


def _pdg(state, body, msg_type="go"):
    comp = Component("X", state=state, handlers=[Handler(msg_type, "m", body)])
    return HandlerPDG(comp, comp.handler_for(msg_type))


class TestReachingDefinitions:
    def test_entry_defines_state_and_param(self):
        comp = Component("X", state={"a": 0}, handlers=[Handler("go", "m", [Assign("b", 1)])])
        handler = comp.handler_for("go")
        cfg = build_cfg(handler)
        rd = reaching_definitions(cfg, ["a"], "m")
        first = handler.body[0].sid
        assert (ENTRY, "a") in rd.in_sets[first]
        assert (ENTRY, MSG_PARAM) in rd.in_sets[first]

    def test_assignment_kills_previous_definition(self):
        s1 = Assign("x", 1)
        s2 = Assign("x", 2)
        s3 = Assign("y", Var("x"))
        pdg = _pdg({"x": 0, "y": 0}, [s1, s2, s3])
        feeding = {d for d, v in pdg.data_deps[s3.sid] if v == "x"}
        assert feeding == {s2.sid}

    def test_branch_definitions_merge(self):
        t = Assign("x", 1)
        e = Assign("x", 2)
        use = Assign("y", Var("x"))
        pdg = _pdg({"x": 0, "y": 0}, [If(Field("m", "c"), [t], [e]), use])
        feeding = {d for d, v in pdg.data_deps[use.sid] if v == "x"}
        assert feeding == {t.sid, e.sid}

    def test_loop_carried_definition_reaches_header_use(self):
        body = Assign("i", Var("i") + 1)
        loop = While(Var("i") < 3, [body])
        pdg = _pdg({"i": 0}, [loop])
        feeding = {d for d, v in pdg.data_deps[loop.sid] if v == "i"}
        assert body.sid in feeding
        assert ENTRY in feeding


class TestBackwardSlice:
    def test_direct_data_dependence(self):
        send = Send("out", "B", {"v": Var("z")})
        pdg = _pdg({"z": 0}, [send])
        sl = pdg.backward_slice(send.sid)
        assert sl.entry_state_vars == frozenset({"z"})
        assert not sl.uses_message

    def test_message_dependence(self):
        send = Send("out", "B", {"v": Field("m", "x")})
        pdg = _pdg({}, [send])
        sl = pdg.backward_slice(send.sid)
        assert sl.uses_message

    def test_transitive_through_local(self):
        mid = Assign("tmp", Var("z") * 2)
        send = Send("out", "B", {"v": Var("tmp")})
        pdg = _pdg({"z": 0}, [mid, send])
        sl = pdg.backward_slice(send.sid)
        assert "z" in sl.entry_state_vars
        assert mid.sid in sl.nodes

    def test_control_dependence_included(self):
        send = Send("out", "B", {"v": 1})
        branch = If(Var("gate") > 0, [send])
        pdg = _pdg({"gate": 0}, [branch])
        sl = pdg.backward_slice(send.sid)
        assert "gate" in sl.entry_state_vars

    def test_unrelated_vars_excluded(self):
        noise = Assign("other", Var("other") + 1)
        send = Send("out", "B", {"v": Var("z")})
        pdg = _pdg({"z": 0, "other": 0}, [noise, send])
        sl = pdg.backward_slice(send.sid)
        assert "other" not in sl.entry_state_vars

    def test_invalid_criterion(self):
        pdg = _pdg({"z": 0}, [Assign("z", 1)])
        with pytest.raises(AnalysisError):
            pdg.backward_slice(999999)


class TestForwardSlice:
    def test_message_write_detected(self):
        w = Assign("z", Field("m", "x"))
        pdg = _pdg({"z": 0}, [w])
        assert pdg.message_written_vars() == {"z"}

    def test_constant_write_not_message_influenced(self):
        w = Assign("z", 5)
        pdg = _pdg({"z": 0}, [w])
        assert pdg.message_written_vars() == set()
        assert pdg.written_vars() == {"z"}

    def test_control_influenced_write_detected(self):
        w = Assign("z", 1)
        branch = If(Field("m", "c"), [w])
        pdg = _pdg({"z": 0}, [branch])
        assert "z" in pdg.message_written_vars()

    def test_transitive_message_influence(self):
        first = Assign("tmp", Field("m", "x"))
        second = Assign("z", Var("tmp") + 1)
        pdg = _pdg({"z": 0}, [first, second])
        assert "z" in pdg.message_written_vars()


class TestSummaries:
    def test_write_summary_union_over_sites(self):
        w1 = Assign("z", Var("a"))
        w2 = Assign("z", Field("m", "x"))
        pdg = _pdg({"z": 0, "a": 0}, [If(Field("m", "c"), [w1], [w2])])
        summary = pdg.write_summaries()["z"]
        assert "a" in summary.influencing_state_vars
        assert summary.uses_message

    def test_send_summaries_in_order(self):
        s1 = Send("one", "B", {"v": Var("a")})
        s2 = Send("two", "B", {"v": Var("b")})
        pdg = _pdg({"a": 0, "b": 0}, [s1, s2])
        summaries = pdg.send_summaries()
        assert [s.msg_type for s in summaries] == ["one", "two"]
        assert summaries[0].influencing_state_vars == {"a"}
        assert summaries[1].influencing_state_vars == {"b"}

    def test_build_pdgs_per_handler(self):
        comp = Component(
            "X",
            state={"z": 0},
            handlers=[Handler("a", "m", [Assign("z", 1)]), Handler("b", "m", [])],
        )
        pdgs = build_pdgs(comp)
        assert set(pdgs) == {"a", "b"}
