"""Unit tests for message uids and the message model."""

import pytest

from repro.errors import IRError
from repro.lang.ir import CLIENT, EXTERNAL
from repro.lang.message import Message, MessageUid, UidFactory


class TestUidFactory:
    def test_sequence_is_monotonic(self):
        f = UidFactory("10.0.0.1", 3)
        uids = [f.next_uid() for _ in range(5)]
        assert [u.seq for u in uids] == [1, 2, 3, 4, 5]
        assert all(u.address == "10.0.0.1" and u.process_id == 3 for u in uids)

    def test_independent_factories(self):
        a, b = UidFactory("h1", 1), UidFactory("h2", 2)
        assert a.next_uid() != b.next_uid()

    def test_requires_address(self):
        with pytest.raises(IRError):
            UidFactory("", 1)


class TestMessageUid:
    def test_equality_and_hash(self):
        u1 = MessageUid("h", 1, 5)
        u2 = MessageUid("h", 1, 5)
        assert u1 == u2
        assert hash(u1) == hash(u2)

    def test_ordering_is_total(self):
        uids = [MessageUid("b", 1, 1), MessageUid("a", 2, 9), MessageUid("a", 1, 3)]
        assert sorted(uids)[0] == MessageUid("a", 1, 3)

    def test_str_format(self):
        assert str(MessageUid("h", 2, 7)) == "h/2#7"


class TestMessage:
    def test_with_causes(self):
        uid = MessageUid("h", 1, 1)
        cause = MessageUid("h", 1, 2)
        m = Message(uid, "go", EXTERNAL, "A", {"x": 1})
        m2 = m.with_causes(frozenset({cause}))
        assert m2.cause_uids == frozenset({cause})
        assert m2.uid == m.uid
        assert m.cause_uids == frozenset()

    def test_defaults(self):
        m = Message(MessageUid("h", 1, 1), "go", EXTERNAL, "A")
        assert m.sampled is True
        assert m.root_uid is None
        assert dict(m.fields) == {}

    def test_str(self):
        m = Message(MessageUid("h", 1, 1), "go", "A", CLIENT)
        assert "go" in str(m)
        assert "A" in str(m)
