"""Thread-safety stress tests and snapshot-merge tests for telemetry."""

import threading

import pytest

from repro.telemetry import (
    SCHEMA_VERSION,
    MetricsRegistry,
    TelemetryError,
)

THREADS = 8
INCREMENTS = 2_000


def _hammer(registry, barrier):
    barrier.wait()
    counter = registry.counter("stress.counter")
    gauge = registry.gauge("stress.gauge")
    histogram = registry.histogram("stress.histogram", buckets=(1, 10, 100))
    for i in range(INCREMENTS):
        counter.inc()
        gauge.inc(2)
        gauge.dec()
        histogram.observe(i % 150)


class TestThreadSafeRegistry:
    def test_concurrent_mutation_is_exact(self):
        """N threads × M increments must land exactly — no lost updates."""
        registry = MetricsRegistry(thread_safe=True)
        barrier = threading.Barrier(THREADS)
        threads = [
            threading.Thread(target=_hammer, args=(registry, barrier))
            for _ in range(THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.counter("stress.counter").value == THREADS * INCREMENTS
        assert registry.gauge("stress.gauge").value == THREADS * INCREMENTS
        hist = registry.histogram("stress.histogram", buckets=(1, 10, 100))
        assert hist.to_dict()["count"] == THREADS * INCREMENTS

    def test_concurrent_get_or_create_yields_one_instrument(self):
        """Racing get-or-create must converge on a single identity."""
        registry = MetricsRegistry(thread_safe=True)
        barrier = threading.Barrier(THREADS)
        seen = []
        lock = threading.Lock()

        def create():
            barrier.wait()
            counter = registry.counter("race.counter")
            counter.inc()
            with lock:
                seen.append(counter)

        threads = [threading.Thread(target=create) for _ in range(THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(c) for c in seen}) == 1
        assert registry.counter("race.counter").value == THREADS

    def test_unlocked_registry_stays_lock_free(self):
        """The default registry must not pay for locks it didn't ask for."""
        registry = MetricsRegistry()
        counter = registry.counter("plain")
        assert "inc" not in vars(counter)  # no bound-method shadowing
        locked = MetricsRegistry(thread_safe=True).counter("locked")
        assert "inc" in vars(locked)


class TestMergeSnapshot:
    def test_counters_and_gauges_add(self):
        worker = MetricsRegistry()
        worker.counter("paths").inc(7)
        worker.gauge("depth").set(3)
        parent = MetricsRegistry()
        parent.counter("paths").inc(5)
        parent.merge_snapshot(worker.snapshot())
        parent.merge_snapshot(worker.snapshot())
        assert parent.counter("paths").value == 19
        assert parent.gauge("depth").value == 6

    def test_labels_survive_the_merge(self):
        worker = MetricsRegistry()
        worker.counter("paths", labels={"manager": "dca"}).inc(2)
        parent = MetricsRegistry()
        parent.merge_snapshot(worker.snapshot())
        assert parent.counter("paths", labels={"manager": "dca"}).value == 2

    def test_histograms_merge_bucket_by_bucket(self):
        bounds = (1, 5, 10)
        worker_a = MetricsRegistry()
        worker_b = MetricsRegistry()
        for v in (0.5, 3, 7):
            worker_a.histogram("size", buckets=bounds).observe(v)
        for v in (2, 20):
            worker_b.histogram("size", buckets=bounds).observe(v)
        parent = MetricsRegistry()
        parent.merge_snapshot(worker_a.snapshot())
        parent.merge_snapshot(worker_b.snapshot())
        merged = parent.histogram("size", buckets=bounds).to_dict()
        assert merged["count"] == 5
        assert merged["sum"] == pytest.approx(32.5)
        assert merged["min"] == 0.5
        assert merged["max"] == 20
        assert merged["buckets"]["1.0"] == 1  # 0.5
        assert merged["buckets"]["5.0"] == 2  # 3, 2
        assert merged["buckets"]["10.0"] == 1  # 7
        assert merged["buckets"]["+Inf"] == 1  # 20 (overflow)

    def test_histogram_bucket_mismatch_rejected(self):
        worker = MetricsRegistry()
        worker.histogram("size", buckets=(1, 5)).observe(3)
        parent = MetricsRegistry()
        parent.histogram("size", buckets=(1, 5, 10)).observe(3)
        with pytest.raises(TelemetryError):
            parent.merge_snapshot(worker.snapshot())

    def test_schema_mismatch_rejected(self):
        parent = MetricsRegistry()
        with pytest.raises(TelemetryError):
            parent.merge_snapshot({"schema": SCHEMA_VERSION + 1, "metrics": {}})

    def test_unknown_kind_rejected(self):
        parent = MetricsRegistry()
        bad = {
            "schema": SCHEMA_VERSION,
            "metrics": {"x": {"type": "summary", "value": 1}},
        }
        with pytest.raises(TelemetryError):
            parent.merge_snapshot(bad)

    def test_merge_into_thread_safe_registry(self):
        worker = MetricsRegistry()
        worker.counter("paths").inc(4)
        parent = MetricsRegistry(thread_safe=True)
        parent.merge_snapshot(worker.snapshot())
        assert parent.counter("paths").value == 4
