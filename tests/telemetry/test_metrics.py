"""Unit tests for the dependency-free telemetry registry."""

import json

import pytest

from repro.errors import ReproError
from repro.telemetry import (
    SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TelemetryError,
    get_registry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("requests")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_increment_rejected(self):
        c = MetricsRegistry().counter("requests")
        with pytest.raises(TelemetryError):
            c.inc(-1)

    def test_telemetry_error_is_repro_error(self):
        assert issubclass(TelemetryError, ReproError)


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("depth")
        g.set(10)
        g.inc(2.5)
        g.dec()
        assert g.value == 11.5


class TestHistogram:
    def test_counts_and_summary_stats(self):
        h = MetricsRegistry().histogram("size", buckets=(1, 5, 10))
        for v in (0.5, 3, 7, 20):
            h.observe(v)
        d = h.to_dict()
        assert d["count"] == 4
        assert d["sum"] == pytest.approx(30.5)
        assert d["min"] == 0.5
        assert d["max"] == 20

    def test_percentile_reports_bucket_upper_bound(self):
        h = MetricsRegistry().histogram("size", buckets=(1, 5, 10))
        for _ in range(99):
            h.observe(0.5)
        h.observe(7)
        assert h.percentile(0.5) == 1
        assert h.percentile(0.99) == 1
        # p100 is clamped to the observed max, not promoted to the bound
        # of the bucket the max landed in.
        assert h.percentile(1.0) == 7

    def test_percentile_clamps_to_observed_range(self):
        # All samples land above the first bucket: p0 must be the
        # observed min (the old code returned the first bucket's bound,
        # 1.0, because rank 0 was satisfied by the empty first bucket),
        # and mid-quantiles must not exceed the observed max even though
        # their bucket's upper bound (100) does.
        h = MetricsRegistry().histogram("size", buckets=(1, 10, 100))
        for v in (50, 60, 70):
            h.observe(v)
        assert h.percentile(0.0) == 50
        assert h.percentile(0.5) == 70
        assert h.percentile(1.0) == 70

    def test_percentile_single_bucket(self):
        h = MetricsRegistry().histogram("size", buckets=(10,))
        for v in (2, 4):
            h.observe(v)
        assert h.percentile(0.0) == 2
        assert h.percentile(0.5) == 4  # bound 10 clamped to max
        assert h.percentile(1.0) == 4

    def test_percentile_overflow_bucket_is_observed_max(self):
        h = MetricsRegistry().histogram("size", buckets=(1,))
        for v in (5, 9):
            h.observe(v)
        assert h.percentile(1.0) == 9
        assert h.percentile(0.9) == 9

    def test_empty_histogram(self):
        h = MetricsRegistry().histogram("size", buckets=(1, 5))
        d = h.to_dict()
        assert d["count"] == 0
        assert h.percentile(0.0) == 0.0
        assert h.percentile(0.5) == 0.0
        assert h.percentile(1.0) == 0.0


class TestTimer:
    def test_timer_observes_into_histogram(self):
        reg = MetricsRegistry()
        t = reg.timer("op_seconds")
        with t:
            pass
        with t:
            pass
        hist = reg.get("op_seconds")
        assert hist.to_dict()["count"] == 2
        assert hist.to_dict()["sum"] >= 0


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TelemetryError):
            reg.gauge("a")

    def test_labels_produce_distinct_sorted_keys(self):
        reg = MetricsRegistry()
        c1 = reg.counter("hits", labels={"b": "2", "a": "1"})
        c2 = reg.counter("hits", labels={"a": "1", "b": "2"})
        c3 = reg.counter("hits", labels={"a": "other"})
        assert c1 is c2
        assert c1 is not c3
        assert c1.key == 'hits{a=1,b=2}'

    def test_snapshot_schema(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(3)
        reg.gauge("b").set(1.5)
        snap = reg.snapshot()
        assert snap["schema"] == SCHEMA_VERSION
        assert snap["metrics"]["a"]["value"] == 3
        assert snap["metrics"]["b"]["value"] == 1.5

    def test_to_json_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        payload = json.loads(reg.to_json())
        assert payload["schema"] == SCHEMA_VERSION
        assert "a" in payload["metrics"]

    def test_reset_zeroes_but_keeps_identity(self):
        reg = MetricsRegistry()
        c = reg.counter("a")
        c.inc(7)
        reg.reset()
        assert c.value == 0
        assert reg.counter("a") is c

    def test_clear_forgets_metrics(self):
        reg = MetricsRegistry()
        reg.counter("a")
        reg.clear()
        assert reg.get("a") is None

    def test_iteration_and_names(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.counter("a")
        assert sorted(m.key for m in reg) == ["a", "b"]
        assert set(reg.names()) == {"a", "b"}

    def test_default_registry_is_singleton(self):
        assert get_registry() is get_registry()
        assert isinstance(get_registry().counter("test.singleton"), Counter)

    def test_metric_types_exported(self):
        reg = MetricsRegistry()
        assert isinstance(reg.gauge("g"), Gauge)
        assert isinstance(reg.histogram("h"), Histogram)
