"""The paper's Fig. 4 worked example, end to end.

These tests pin the exact behaviour the paper illustrates:
``V_out(Comp1) = {z}``, writes to ``p`` and ``q`` are ignored, and
``{msg1[x:150], msg2[y:200]} ⟶ msg3[s:22500]``.
"""

import pytest

from repro.core.instrument import InstrumentedComponent
from repro.lang.ir import EXTERNAL
from repro.lang.message import Message, UidFactory


@pytest.fixture()
def setup(fig4_app, fig4_dca):
    comp1 = InstrumentedComponent(
        fig4_app.components["Comp1"], fig4_dca.per_component["Comp1"], fig4_app.library
    )
    return fig4_app, fig4_dca, comp1


class TestFig4Statics:
    def test_v_out_is_z(self, fig4_dca):
        assert fig4_dca.per_component["Comp1"].v_out == frozenset({"z"})

    def test_v_tr_is_z(self, fig4_dca):
        assert fig4_dca.per_component["Comp1"].v_tr == frozenset({"z"})

    def test_msg1_v_in_includes_p_but_tracked_only_z(self, fig4_dca):
        analysis = fig4_dca.per_component["Comp1"]
        assert analysis.v_in["msg1"] == frozenset({"p", "z"})
        assert analysis.v_tr_by_msg["msg1"] == frozenset({"z"})

    def test_msg2_write_to_q_ignored(self, fig4_dca):
        analysis = fig4_dca.per_component["Comp1"]
        assert analysis.v_in["msg2"] == frozenset({"q"})
        assert analysis.v_tr_by_msg["msg2"] == frozenset()

    def test_comp2_tracks_nothing(self, fig4_dca):
        assert fig4_dca.per_component["Comp2"].v_tr == frozenset()

    def test_send_slice_of_msg3(self, fig4_dca):
        slices = fig4_dca.per_component["Comp1"].send_slices["msg2"]
        (sl,) = slices
        assert sl.send_msg_type == "msg3"
        assert sl.s_out == frozenset({"z"})
        assert sl.uses_message  # the if-condition reads msg2.y


class TestFig4Dynamics:
    def _run(self, comp1, x=150, y=200):
        state = comp1.new_state()
        ext = UidFactory("client", 0)
        uids = UidFactory("10.0.0.1", 1)
        m1 = Message(ext.next_uid(), "msg1", EXTERNAL, "Comp1", {"x": x})
        m2 = Message(ext.next_uid(), "msg2", EXTERNAL, "Comp1", {"y": y})
        o1 = comp1.handle(state, m1, uids)
        o2 = comp1.handle(state, m2, uids)
        return m1, m2, o1, o2

    def test_msg3_payload_is_22500(self, setup):
        _, _, comp1 = setup
        _, _, _, o2 = self._run(comp1)
        assert o2.outcome.emitted[0].fields["s"] == 22500

    def test_msg3_caused_by_both_messages(self, setup):
        _, _, comp1 = setup
        m1, m2, _, o2 = self._run(comp1)
        assert o2.outcome.emitted[0].cause_uids == frozenset({m1.uid, m2.uid})

    def test_negative_y_suppresses_emission(self, setup):
        _, _, comp1 = setup
        _, _, _, o2 = self._run(comp1, y=-5)
        assert o2.outcome.emitted == []

    def test_only_z_write_is_tracked(self, setup):
        _, _, comp1 = setup
        _, _, o1, o2 = self._run(comp1)
        # msg1 writes z (tracked) and p (untracked): one store operation.
        assert o1.outcome.tracked_writes == 1
        assert o1.outcome.total_writes == 2
        # msg2 writes only q (untracked).
        assert o2.outcome.tracked_writes == 0

    def test_instrumentation_cost_charged_only_when_sampled(self, setup):
        _, _, comp1 = setup
        state = comp1.new_state()
        uids = UidFactory("10.0.0.1", 1)
        m = Message(
            UidFactory("c", 0).next_uid(), "msg1", EXTERNAL, "Comp1", {"x": 1}, sampled=False
        )
        outcome = comp1.handle(state, m, uids)
        assert outcome.instrumentation_ms == 0.0
