"""Unit tests for the DCA elasticity manager."""

import pytest

from repro.autoscale.manager import ClusterObservation, ComponentObservation
from repro.core.elasticity import (
    DCAElasticityManager,
    DCAManagerConfig,
    detect_serialization_suspects,
)
from repro.core.paths import signature_from_edges
from repro.core.regression import MachineSpec
from repro.errors import ElasticityError
from repro.profiling.profiler import CausalPathProfiler
from repro.lang.ir import CLIENT, EXTERNAL

MACHINE = MachineSpec(capacity_ms_per_minute=1_875.0)


def _profiler_with_paths():
    hot = signature_from_edges(
        "go", [(EXTERNAL, "go", "front"), ("front", "x", "hot"), ("hot", "done", CLIENT)]
    )
    cold = signature_from_edges(
        "go", [(EXTERNAL, "go", "front"), ("front", "y", "cold"), ("cold", "done", CLIENT)]
    )
    profiler = CausalPathProfiler({"go": [hot, cold]})
    return profiler, hot, cold


def _observation(time=10.0, arrivals=300.0, comps=None):
    comps = comps or {}
    return ClusterObservation(
        time_minutes=time,
        external_arrivals_per_min=arrivals,
        components=comps,
        machine=MACHINE,
        sla_latency_ms=500.0,
        app_latency_ms=100.0,
        app_throughput_per_min=arrivals,
    )


def _comp(name, nodes=5, util=0.75, pending=0):
    return ComponentObservation(
        component=name,
        nodes=nodes,
        pending_nodes=pending,
        utilization=util,
    )


class TestConfigValidation:
    def test_rate_bounds(self):
        with pytest.raises(ElasticityError):
            DCAManagerConfig(sampling_rate=1.5)

    def test_target_utilization_bounds(self):
        with pytest.raises(ElasticityError):
            DCAManagerConfig(target_utilization=0.0)

    def test_horizon_positive(self):
        with pytest.raises(ElasticityError):
            DCAManagerConfig(mix_horizon_minutes=0)


class TestSerializationDetection:
    def test_quorum_log_flagged(self, coord_app):
        suspects = detect_serialization_suspects(coord_app)
        assert suspects == {"quorum-log"}

    def test_pipeline_has_no_suspects(self, pipeline_app):
        assert detect_serialization_suspects(pipeline_app) == set()

    def test_fig4_comp2_not_flagged(self, fig4_app):
        # Comp2 replies to the client but receives only one message type.
        assert "Comp2" not in detect_serialization_suspects(fig4_app)


class TestManagerDecisions:
    def _manager(self, profiler, rate=0.10, **config_kwargs):
        return DCAElasticityManager(
            profiler=profiler,
            machine=MACHINE,
            config=DCAManagerConfig(sampling_rate=rate, **config_kwargs),
        )

    def test_name_reflects_rate(self):
        profiler, _, _ = _profiler_with_paths()
        assert self._manager(profiler, rate=0.05).name == "DCA-5%"
        assert self._manager(profiler, rate=1.0).name == "DCA-100%"

    def test_cold_start_holds_allocation(self):
        profiler, _, _ = _profiler_with_paths()
        manager = self._manager(profiler)
        obs = _observation(comps={"front": _comp("front"), "hot": _comp("hot"), "cold": _comp("cold")})
        decision = manager.decide(obs)
        # No κ yet (weights empty → uniform; first interval learns κ).
        assert all(v >= 1 for v in decision.targets.values())

    def test_emergency_correction_on_saturation(self):
        profiler, hot, cold = _profiler_with_paths()
        manager = self._manager(profiler)
        obs = _observation(comps={"hot": _comp("hot", nodes=4, util=1.5)})
        decision = manager.decide(obs)
        # util 1.5 at target 0.73 → roughly doubles the allocation.
        assert decision.targets["hot"] >= 7

    def test_idle_component_released(self):
        profiler, _, _ = _profiler_with_paths()
        manager = self._manager(profiler, below_band_patience=2)
        obs = _observation(comps={"cold": _comp("cold", nodes=10, util=0.3)})
        manager.decide(obs)
        second = manager.decide(obs)
        # The causal sizing (κ · w · λ) pulls the idle component down.
        assert second.targets["cold"] < 10

    def test_in_band_component_held(self):
        profiler, _, _ = _profiler_with_paths()
        manager = self._manager(profiler)
        obs = _observation(comps={"ok": _comp("ok", nodes=10, util=0.75)})
        first = manager.decide(obs)
        assert abs(first.targets["ok"] - 10) <= 1

    def test_serialization_cap_applied(self):
        profiler, _, _ = _profiler_with_paths()
        manager = DCAElasticityManager(
            profiler=profiler,
            machine=MACHINE,
            config=DCAManagerConfig(serial_node_cap=3),
            serialization_suspects={"hot"},
        )
        obs = _observation(comps={"hot": _comp("hot", nodes=4, util=2.0)})
        decision = manager.decide(obs)
        assert decision.targets["hot"] == 3

    def test_infrastructure_nodes_scale_with_rate(self):
        profiler, _, _ = _profiler_with_paths()
        low = self._manager(profiler, rate=0.05)
        high = self._manager(profiler, rate=1.0)
        obs = _observation(arrivals=2_000.0, comps={"hot": _comp("hot")})
        assert high.decide(obs).infrastructure_nodes >= low.decide(obs).infrastructure_nodes

    def test_weights_follow_profile(self):
        profiler, hot_path, cold_path = _profiler_with_paths()
        manager = self._manager(profiler, rate=1.0)
        # Record a hot-path-dominated recent profile.
        for minute in range(8, 11):
            profiler.record(hot_path, float(minute), count=90)
            profiler.record(cold_path, float(minute), count=10)
        weights = manager._current_weights(10.0, _observation(comps={}))
        assert weights["hot"] == pytest.approx(0.9, abs=0.05)
        assert weights["cold"] == pytest.approx(0.1, abs=0.05)
        assert weights["front"] == pytest.approx(1.0, abs=0.01)

    def test_confidence_fallback_to_long_window(self):
        profiler, hot_path, cold_path = _profiler_with_paths()
        manager = self._manager(profiler, rate=0.05, min_mix_samples=80)
        # Old profile says cold-dominated; recent (sparse) says hot.
        for minute in range(0, 50):
            profiler.record(cold_path, float(minute), count=20)
        profiler.record(hot_path, 59.0, count=5)  # only 5 recent samples < 80
        weights = manager._current_weights(60.0, _observation(comps={}))
        # Fallback to the 60-minute window ⇒ cold still dominates.
        assert weights.get("cold", 0.0) > weights.get("hot", 0.0)

    def test_kappa_learning_is_slow(self):
        profiler, hot_path, cold_path = _profiler_with_paths()
        manager = self._manager(profiler, rate=1.0)
        profiler.record(hot_path, 9.0, count=100)
        obs = _observation(comps={"hot": _comp("hot", nodes=10, util=0.8)})
        manager.decide(obs)
        first = manager._kappa["hot"]
        # Same observation again: κ must barely move (alpha is small).
        manager.decide(obs)
        assert manager._kappa["hot"] == pytest.approx(first, rel=0.1)
