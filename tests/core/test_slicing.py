"""Unit tests for the paper-vocabulary slicing API."""

import pytest

from repro.core.slicing import all_send_slices, backward_slice_from_send, forward_slice_from_recv
from repro.errors import AnalysisError
from repro.lang.builder import ComponentBuilder, field, var
from repro.lang.dependence import HandlerPDG
from repro.lang.ir import CLIENT


def _pdg(comp_builder, msg_type):
    comp = comp_builder.build()
    return HandlerPDG(comp, comp.handler_for(msg_type))


class TestSendSlices:
    def test_s_out_names_influencing_state_vars(self):
        cb = ComponentBuilder("A").state("z", 0).state("noise", 0)
        with cb.on("go", "m") as h:
            h.assign("noise", var("noise") + 1)
            h.send("out", "B", {"v": var("z") * 2})
        cb.state("dummy", 0)  # never used
        # route send to CLIENT to keep the component self-contained
        pdg = _pdg(cb, "go")
        (sl,) = all_send_slices(pdg)
        assert sl.s_out == frozenset({"z"})
        assert sl.component == "A"
        assert sl.dest == "B"

    def test_multiple_sends_sliced_independently(self):
        cb = ComponentBuilder("A").state("a", 0).state("b", 0)
        with cb.on("go", "m") as h:
            h.send("one", CLIENT, {"v": var("a")})
            h.send("two", CLIENT, {"v": var("b")})
        slices = all_send_slices(_pdg(cb, "go"))
        assert [s.s_out for s in slices] == [frozenset({"a"}), frozenset({"b"})]

    def test_non_send_node_rejected(self):
        cb = ComponentBuilder("A").state("z", 0)
        with cb.on("go", "m") as h:
            h.assign("z", 1)
        pdg = _pdg(cb, "go")
        node = pdg.cfg.statement_nodes()[0]
        with pytest.raises(AnalysisError):
            backward_slice_from_send(pdg, node)


class TestRecvSlices:
    def test_v_in_restricted_to_state_vars(self):
        cb = ComponentBuilder("A").state("z", 0)
        with cb.on("go", "m") as h:
            h.assign("local_tmp", field("m", "x"))
            h.assign("z", var("local_tmp"))
        recv = forward_slice_from_recv(_pdg(cb, "go"))
        assert recv.v_in == frozenset({"z"})  # locals excluded

    def test_message_influenced_subset(self):
        cb = ComponentBuilder("A").state("z", 0).state("counter", 0)
        with cb.on("go", "m") as h:
            h.assign("z", field("m", "x"))
            h.assign("counter", var("counter") + 1)
        recv = forward_slice_from_recv(_pdg(cb, "go"))
        assert recv.v_in == frozenset({"z", "counter"})
        assert recv.message_influenced == frozenset({"z"})
