"""Unit tests for static causal-path enumeration and path signatures."""

from hypothesis import given, strategies as st

from repro.core.paths import (
    enumerate_causal_paths,
    handler_emission_sets,
    signature_from_edges,
)
from repro.lang.builder import AppBuilder, ComponentBuilder, field, var
from repro.lang.ir import CLIENT, EXTERNAL, Handler, If, Send, While


class TestEmissionSets:
    def test_straight_line_single_variant(self):
        h = Handler("go", "m", [Send("a", "X"), Send("b", "Y")])
        assert handler_emission_sets(h) == [(("a", "X"), ("b", "Y"))]

    def test_if_yields_two_variants(self):
        h = Handler("go", "m", [If(field("m", "c"), [Send("a", "X")], [Send("b", "Y")])])
        variants = handler_emission_sets(h)
        assert sorted(variants) == [(("a", "X"),), (("b", "Y"),)]

    def test_if_without_else_includes_empty(self):
        h = Handler("go", "m", [If(field("m", "c"), [Send("a", "X")])])
        assert sorted(handler_emission_sets(h)) == [(), (("a", "X"),)]

    def test_while_zero_or_one(self):
        h = Handler("go", "m", [While(var("i") < 3, [Send("a", "X")])])
        assert sorted(handler_emission_sets(h)) == [(), (("a", "X"),)]

    def test_nested_branching_counts(self):
        h = Handler(
            "go",
            "m",
            [
                If(field("m", "a"), [Send("x", "X")], [Send("y", "Y")]),
                If(field("m", "b"), [Send("z", "Z")]),
            ],
        )
        assert len(handler_emission_sets(h)) == 4

    def test_no_sends(self):
        h = Handler("go", "m", [])
        assert handler_emission_sets(h) == [()]


class TestEnumeration:
    def test_pipeline_single_path(self, pipeline_app):
        paths = enumerate_causal_paths(pipeline_app)
        assert len(paths["start"]) == 1
        sig = paths["start"][0]
        assert (EXTERNAL, "start", "A") in sig.edges
        assert ("C", "done", CLIENT) in sig.edges

    def test_branching_app_two_paths(self):
        a = ComponentBuilder("A")
        with a.on("go", "m") as h:
            with h.if_(field("m", "kind").eq("fast")) as br:
                br.then.send("f", "B")
                br.orelse.send("s", "B")
        b = ComponentBuilder("B")
        with b.on("f", "m") as h:
            h.send("done", CLIENT)
        with b.on("s", "m") as h:
            h.send("done", CLIENT)
        app = AppBuilder("t").component(a).component(b).entry("go", "A").build()
        paths = enumerate_causal_paths(app)
        assert len(paths["go"]) == 2

    def test_cyclic_architecture_terminates(self):
        """A retry loop (A→B→A) must not hang enumeration."""
        a = ComponentBuilder("A")
        with a.on("go", "m") as h:
            h.send("ping", "B")
        with a.on("pong", "m") as h:
            with h.if_(field("m", "retry") > 0) as br:
                br.then.send("ping", "B")
                br.orelse.send("done", CLIENT)
        b = ComponentBuilder("B")
        with b.on("ping", "m") as h:
            h.send("pong", "A", {"retry": 0})
        app = AppBuilder("t").component(a).component(b).entry("go", "A").build()
        paths = enumerate_causal_paths(app, max_repeats=2)
        assert paths["go"]  # terminated and produced signatures

    def test_every_request_type_enumerated(self, pubsub_app):
        paths = enumerate_causal_paths(pubsub_app)
        assert set(paths) == {"pub_request", "sub_request", "consume_request"}
        assert all(len(v) >= 1 for v in paths.values())


class TestPathSignature:
    def test_signature_canonical_sorting_and_dedup(self):
        edges = [("B", "x", "C"), ("A", "x", "B"), ("B", "x", "C")]
        sig = signature_from_edges("go", edges)
        assert sig.edges == (("A", "x", "B"), ("B", "x", "C"))

    def test_components_excludes_pseudo_nodes(self):
        sig = signature_from_edges(
            "go", [(EXTERNAL, "go", "A"), ("A", "x", "B"), ("B", "done", CLIENT)]
        )
        assert sig.components == frozenset({"A", "B"})

    def test_path_id_stable_and_distinct(self):
        s1 = signature_from_edges("go", [("A", "x", "B")])
        s2 = signature_from_edges("go", [("A", "x", "B")])
        s3 = signature_from_edges("go", [("A", "y", "B")])
        assert s1.path_id == s2.path_id
        assert s1.path_id != s3.path_id

    def test_describe_mentions_hops(self):
        sig = signature_from_edges("go", [("A", "x", "B")])
        assert "A--x-->B" in sig.describe()

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["A", "B", "C", "D"]),
                st.sampled_from(["m1", "m2", "m3"]),
                st.sampled_from(["B", "C", "D", CLIENT]),
            ),
            min_size=1,
            max_size=12,
        )
    )
    def test_signature_order_invariance(self, edges):
        """Property: signatures are invariant under edge ordering/duplication."""
        sig1 = signature_from_edges("go", edges)
        sig2 = signature_from_edges("go", list(reversed(edges)) + edges)
        assert sig1 == sig2
        assert sig1.path_id == sig2.path_id
