"""Unit tests for the overhead model and component instrumentation."""

import pytest

from repro.core.instrument import InstrumentedComponent, OverheadModel, instrument_application
from repro.errors import AnalysisError
from repro.lang.ir import EXTERNAL
from repro.lang.message import Message, UidFactory


class TestOverheadModel:
    def test_cost_composition(self):
        model = OverheadModel(per_op_ms=0.1, fixed_ms=0.5, amortization=0.0)
        assert model.cost_ms(ops=10, sampling_rate=0.1) == pytest.approx(0.5 + 1.0)

    def test_amortization_reduces_per_op_cost(self):
        model = OverheadModel(per_op_ms=1.0, fixed_ms=0.0, amortization=0.5)
        low = model.cost_ms(ops=10, sampling_rate=0.05)
        full = model.cost_ms(ops=10, sampling_rate=1.0)
        assert full < low
        assert full == pytest.approx(10 * 1.0 * 0.5)

    def test_zero_ops_zero_fixed(self):
        model = OverheadModel(per_op_ms=1.0, fixed_ms=0.0)
        assert model.cost_ms(0, 0.5) == 0.0

    def test_rate_clamped(self):
        model = OverheadModel(per_op_ms=1.0, fixed_ms=0.0, amortization=1.0)
        assert model.cost_ms(10, 5.0) == pytest.approx(0.0)  # clamped to rate 1


class TestInstrumentedComponent:
    def test_mismatched_analysis_rejected(self, fig4_app, fig4_dca):
        with pytest.raises(AnalysisError):
            InstrumentedComponent(
                fig4_app.components["Comp2"],
                fig4_dca.per_component["Comp1"],
                fig4_app.library,
            )

    def test_overhead_fraction(self, fig4_app, fig4_dca):
        comp = InstrumentedComponent(
            fig4_app.components["Comp1"],
            fig4_dca.per_component["Comp1"],
            fig4_app.library,
            overhead_model=OverheadModel(per_op_ms=2.0, fixed_ms=0.0, amortization=0.0),
        )
        state = comp.new_state()
        msg = Message(UidFactory("c", 0).next_uid(), "msg1", EXTERNAL, "Comp1", {"x": 1})
        outcome = comp.handle(state, msg, UidFactory("h", 1))
        # one tracked write (z) at 2ms over a 20ms base cost
        assert outcome.instrumentation_ms == pytest.approx(2.0)
        assert outcome.base_ms == pytest.approx(20.0)
        assert outcome.overhead_fraction == pytest.approx(0.1)
        assert outcome.total_ms == pytest.approx(22.0)

    def test_instrument_application_covers_all_components(self, fig4_app, fig4_dca):
        instrumented = instrument_application(fig4_app, fig4_dca)
        assert set(instrumented) == {"Comp1", "Comp2"}

    def test_instrument_application_missing_analysis(self, fig4_app, fig4_dca):
        from dataclasses import replace

        partial = replace(
            fig4_dca, per_component={"Comp1": fig4_dca.per_component["Comp1"]}
        )
        with pytest.raises(AnalysisError):
            instrument_application(fig4_app, partial)
