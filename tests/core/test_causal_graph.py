"""Integration tests for the tracker: messages → graph store → profiler."""

import pytest

from repro.core.causal_graph import DirectCausalityTracker
from repro.core.dca import analyze_application
from repro.core.paths import enumerate_causal_paths
from repro.profiling.profiler import CausalPathProfiler
from repro.sim.runtime import ApplicationRuntime
from repro.workloads.generator import RequestClass


@pytest.fixture()
def tracker_setup(pipeline_app):
    dca = analyze_application(pipeline_app)
    runtime = ApplicationRuntime(pipeline_app, dca_result=dca)
    profiler = CausalPathProfiler(enumerate_causal_paths(pipeline_app))
    tracker = DirectCausalityTracker(profiler)
    return runtime, profiler, tracker


REQUEST = RequestClass("go", "start", {"x": 5})


class TestTrackerPipeline:
    def test_completed_path_counted(self, tracker_setup):
        runtime, profiler, tracker = tracker_setup
        tracker.advance_to(10.0)
        trace = runtime.execute_request(REQUEST, sampled=True)
        tracker.observe_all(trace.messages)
        assert tracker.completed_paths == 1
        counts = profiler.counts(10.0)
        assert sum(counts.values()) == 1

    def test_counted_path_matches_static_signature(self, tracker_setup):
        runtime, profiler, tracker = tracker_setup
        trace = runtime.execute_request(REQUEST, sampled=True)
        tracker.observe_all(trace.messages)
        assert profiler.dynamic_registrations == 0  # matched a static path

    def test_eviction_bounds_store(self, tracker_setup):
        runtime, profiler, tracker = tracker_setup
        for _ in range(20):
            trace = runtime.execute_request(REQUEST, sampled=True)
            tracker.observe_all(trace.messages)
        assert tracker.store.node_count() == 0  # all graphs evicted

    def test_eviction_can_be_disabled(self, pipeline_app):
        dca = analyze_application(pipeline_app)
        runtime = ApplicationRuntime(pipeline_app, dca_result=dca)
        profiler = CausalPathProfiler(enumerate_causal_paths(pipeline_app))
        tracker = DirectCausalityTracker(profiler, evict_completed=False)
        trace = runtime.execute_request(REQUEST, sampled=True)
        tracker.observe_all(trace.messages)
        assert tracker.store.node_count() == trace.total_messages()

    def test_unsampled_messages_ignored(self, tracker_setup):
        runtime, profiler, tracker = tracker_setup
        trace = runtime.execute_request(REQUEST, sampled=False)
        tracker.observe_all(trace.messages)
        assert tracker.completed_paths == 0
        assert tracker.store.node_count() == 0

    def test_incomplete_path_not_counted(self, tracker_setup):
        runtime, profiler, tracker = tracker_setup
        trace = runtime.execute_request(REQUEST, sampled=True)
        # Withhold the response message (dest CLIENT).
        partial = [m for m in trace.messages if m.dest != "__client__"]
        tracker.observe_all(partial)
        assert tracker.completed_paths == 0

    def test_counts_use_advance_to_time(self, tracker_setup):
        runtime, profiler, tracker = tracker_setup
        tracker.advance_to(100.0)
        trace = runtime.execute_request(REQUEST, sampled=True)
        tracker.observe_all(trace.messages)
        # Window is 60 minutes: at t=200 the completion has aged out.
        assert sum(profiler.counts(100.0).values()) == 1
        assert sum(profiler.counts(200.0).values()) == 0


class TestMultiResponseRequests:
    def test_one_count_per_root_despite_many_responses(self, trading_app):
        """A market-data request streams 4 snapshots to the client; the
        causal path must still be counted exactly once."""
        dca = analyze_application(trading_app)
        runtime = ApplicationRuntime(trading_app, dca_result=dca)
        profiler = CausalPathProfiler(enumerate_causal_paths(trading_app))
        tracker = DirectCausalityTracker(profiler)
        request = RequestClass(
            "md", "fix_request", {"kind": "mdata", "symbol": "A", "qty": 0, "order_id": 0, "signal": 0}
        )
        trace = runtime.execute_request(request, sampled=True)
        assert trace.responses == 4
        tracker.observe_all(trace.messages)
        assert tracker.completed_paths == 1
        assert sum(profiler.counts(0.0).values()) == 1
