"""Unit tests for the linear-regression capacity model."""

import pytest

from repro.core.regression import LinearCapacityModel, MachineSpec
from repro.errors import ElasticityError


MACHINE = MachineSpec()


def _train_linear(model, slope=0.01, intercept=2.0, n=40):
    for i in range(n):
        workload = 100.0 * (i + 1)
        model.observe(
            machine=MACHINE,
            workload=workload,
            throughput=workload * 0.95,
            latency_ms=50.0,
            machines_needed=intercept + slope * workload,
        )


class TestValidation:
    def test_negative_ridge_rejected(self):
        with pytest.raises(ElasticityError):
            LinearCapacityModel(ridge=-1)

    def test_small_history_rejected(self):
        with pytest.raises(ElasticityError):
            LinearCapacityModel(max_history=2)

    def test_negative_label_rejected(self):
        model = LinearCapacityModel()
        with pytest.raises(ElasticityError):
            model.observe(MACHINE, 1, 1, 1, machines_needed=-5)


class TestColdStart:
    def test_predict_before_enough_samples(self):
        model = LinearCapacityModel()
        with pytest.raises(ElasticityError, match="needs >= 8"):
            model.predict(MACHINE, 100, 95, 50)

    def test_ready_flag(self):
        model = LinearCapacityModel()
        assert not model.ready()
        _train_linear(model, n=8)
        assert model.ready()


class TestLearning:
    def test_recovers_linear_relationship(self):
        model = LinearCapacityModel()
        _train_linear(model, slope=0.01, intercept=2.0)
        predicted = model.predict(MACHINE, workload=2_500.0, throughput=2_375.0, latency_ms=50.0)
        assert predicted == pytest.approx(2.0 + 0.01 * 2_500.0, rel=0.05)

    def test_extrapolates_beyond_training_range(self):
        model = LinearCapacityModel()
        _train_linear(model, slope=0.02, intercept=0.0)
        predicted = model.predict(MACHINE, workload=10_000.0, throughput=9_500.0, latency_ms=50.0)
        assert predicted == pytest.approx(200.0, rel=0.1)

    def test_prediction_clamped_non_negative(self):
        model = LinearCapacityModel()
        for _ in range(10):
            model.observe(MACHINE, workload=100, throughput=95, latency_ms=50, machines_needed=0.0)
        assert model.predict(MACHINE, 0.0, 0.0, 0.0) >= 0.0

    def test_history_bound(self):
        model = LinearCapacityModel(max_history=16)
        _train_linear(model, n=50)
        assert model.sample_count == 16

    def test_old_samples_age_out(self):
        """After the regime changes, predictions should follow the new data."""
        model = LinearCapacityModel(max_history=32)
        _train_linear(model, slope=0.01, n=32)
        _train_linear(model, slope=0.05, n=32)  # new regime fills the window
        predicted = model.predict(MACHINE, workload=2_000.0, throughput=1_900.0, latency_ms=50.0)
        assert predicted == pytest.approx(2.0 + 0.05 * 2_000.0, rel=0.1)
