"""Unit tests for the per-front-end request sampler."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.sampling import RequestSampler
from repro.errors import ElasticityError


class TestValidation:
    def test_rate_bounds(self):
        with pytest.raises(ElasticityError):
            RequestSampler(-0.1)
        with pytest.raises(ElasticityError):
            RequestSampler(1.1)

    def test_front_end_count(self):
        with pytest.raises(ElasticityError):
            RequestSampler(0.1, num_front_ends=0)

    def test_front_end_index_bounds(self):
        s = RequestSampler(0.1, num_front_ends=2)
        with pytest.raises(ElasticityError):
            s.should_sample(2)
        with pytest.raises(ElasticityError):
            s.sample_count(10, front_end_index=-1)


class TestDecisions:
    def test_rate_one_samples_everything(self):
        s = RequestSampler(1.0)
        assert all(s.should_sample() for _ in range(100))
        assert s.observed_rate == 1.0

    def test_rate_zero_samples_nothing(self):
        s = RequestSampler(0.0)
        assert not any(s.should_sample() for _ in range(100))

    def test_determinism_by_seed(self):
        a = RequestSampler(0.3, num_front_ends=2, seed=42)
        b = RequestSampler(0.3, num_front_ends=2, seed=42)
        seq_a = [a.should_sample(i % 2) for i in range(200)]
        seq_b = [b.should_sample(i % 2) for i in range(200)]
        assert seq_a == seq_b

    def test_different_seeds_differ(self):
        a = RequestSampler(0.5, seed=1)
        b = RequestSampler(0.5, seed=2)
        assert [a.should_sample() for _ in range(64)] != [b.should_sample() for _ in range(64)]

    def test_empirical_rate_near_target(self):
        s = RequestSampler(0.2, seed=7)
        hits = sum(s.should_sample() for _ in range(20_000))
        assert 0.18 < hits / 20_000 < 0.22

    def test_per_server_rate_is_global_rate(self):
        # Each front end samples its own traffic slice at the *global*
        # rate (see the module docstring's reconciliation of the paper's
        # "x/k%" phrasing); the removed per_server_budget property
        # suggested a rate of x/k per server, which would have produced
        # a global traced fraction of x/k instead of x.
        s = RequestSampler(0.10, num_front_ends=4, seed=7)
        assert not hasattr(s, "per_server_budget")
        per_server_hits = []
        for fe in range(4):
            fresh = RequestSampler(0.10, num_front_ends=4, seed=7)
            per_server_hits.append(sum(fresh.should_sample(fe) for _ in range(20_000)))
        for hits in per_server_hits:
            assert 0.08 < hits / 20_000 < 0.12


class TestSampleCount:
    def test_exact_at_extremes(self):
        s = RequestSampler(1.0)
        assert s.sample_count(57) == 57
        z = RequestSampler(0.0)
        assert z.sample_count(57) == 0

    def test_zero_arrivals(self):
        s = RequestSampler(0.5)
        assert s.sample_count(0) == 0

    def test_negative_arrivals_rejected(self):
        s = RequestSampler(0.5)
        with pytest.raises(ElasticityError):
            s.sample_count(-1)

    def test_small_counts_within_bounds(self):
        s = RequestSampler(0.5, seed=3)
        for _ in range(50):
            n = s.sample_count(20)
            assert 0 <= n <= 20

    def test_large_counts_use_normal_approximation(self):
        s = RequestSampler(0.1, seed=3)
        draws = [s.sample_count(10_000) for _ in range(30)]
        mean = sum(draws) / len(draws)
        assert 900 < mean < 1100
        assert all(0 <= d <= 10_000 for d in draws)

    @given(st.integers(0, 5000), st.floats(0.01, 0.99))
    @settings(max_examples=50)
    def test_count_never_exceeds_arrivals(self, arrivals, rate):
        s = RequestSampler(rate, seed=11)
        n = s.sample_count(arrivals)
        assert 0 <= n <= arrivals
