"""Tests for the adaptive and preferential sampling extensions."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.sampling import (
    AdaptiveSamplingController,
    PreferentialPathSampler,
    RequestSampler,
)
from repro.errors import ElasticityError


class TestAdaptiveController:
    def test_validation(self):
        with pytest.raises(ElasticityError):
            AdaptiveSamplingController(target_overhead=0)
        with pytest.raises(ElasticityError):
            AdaptiveSamplingController(min_rate=0.5, max_rate=0.1)
        with pytest.raises(ElasticityError):
            AdaptiveSamplingController(gain=0)
        with pytest.raises(ElasticityError):
            AdaptiveSamplingController(max_step_ratio=1.0)

    def test_converges_to_overhead_target(self):
        ctrl = AdaptiveSamplingController(target_overhead=0.05)
        rate = 0.5
        overhead_per_rate = 0.28  # app property: overhead ≈ 0.28 × rate
        for _ in range(25):
            rate = ctrl.update(rate, rate * overhead_per_rate)
        assert rate * overhead_per_rate == pytest.approx(0.05, rel=0.05)

    def test_rate_increases_when_overhead_below_target(self):
        ctrl = AdaptiveSamplingController(target_overhead=0.05)
        assert ctrl.update(0.05, 0.01) > 0.05

    def test_rate_decreases_when_overhead_above_target(self):
        ctrl = AdaptiveSamplingController(target_overhead=0.05)
        assert ctrl.update(0.5, 0.20) < 0.5

    def test_step_bounded(self):
        ctrl = AdaptiveSamplingController(target_overhead=0.05, max_step_ratio=1.5)
        assert ctrl.update(0.10, 10.0) >= 0.10 / 1.5 - 1e-12
        assert ctrl.update(0.10, 1e-9) <= 0.10 * 1.5 + 1e-12

    def test_cold_start_probes_upward(self):
        ctrl = AdaptiveSamplingController()
        assert ctrl.update(0.05, 0.0) > 0.05

    def test_rate_bounds_respected(self):
        ctrl = AdaptiveSamplingController(min_rate=0.02, max_rate=0.5)
        assert ctrl.update(0.03, 10.0) >= 0.02
        rate = 0.5
        for _ in range(10):
            rate = ctrl.update(rate, 1e-6)
        assert rate <= 0.5

    @given(st.floats(0.01, 1.0), st.floats(0.0, 1.0))
    @settings(max_examples=100)
    def test_output_always_in_bounds(self, rate, overhead):
        ctrl = AdaptiveSamplingController()
        out = ctrl.update(rate, overhead)
        assert ctrl.min_rate <= out <= ctrl.max_rate


class TestPreferentialSampler:
    def test_validation(self):
        with pytest.raises(ElasticityError):
            PreferentialPathSampler(0.0)

    def test_rare_types_get_higher_rates(self):
        sampler = PreferentialPathSampler(0.10)
        rates = sampler.update_rates({"hot": 0.9, "rare": 0.1})
        assert rates["rare"] > rates["hot"]

    def test_budget_is_preserved(self):
        sampler = PreferentialPathSampler(0.10)
        shares = {"a": 0.6, "b": 0.3, "c": 0.1}
        sampler.update_rates(shares)
        assert sampler.effective_budget(shares) == pytest.approx(0.10, rel=1e-6)

    def test_budget_preserved_with_capped_types(self):
        """Very rare types hit the rate-1 cap; the clipped budget is
        redistributed, keeping the aggregate budget intact."""
        sampler = PreferentialPathSampler(0.30)
        shares = {"hot": 0.98, "tiny": 0.02}
        rates = sampler.update_rates(shares)
        assert rates["tiny"] == 1.0
        assert sampler.effective_budget(shares) == pytest.approx(0.30, rel=1e-6)

    def test_rates_never_exceed_one(self):
        sampler = PreferentialPathSampler(0.9)
        rates = sampler.update_rates({"a": 0.999, "b": 0.001})
        assert all(0 < r <= 1.0 for r in rates.values())

    def test_uniform_shares_give_uniform_rates(self):
        sampler = PreferentialPathSampler(0.10)
        rates = sampler.update_rates({"a": 0.5, "b": 0.5})
        assert rates["a"] == pytest.approx(rates["b"])
        assert rates["a"] == pytest.approx(0.10)

    def test_sample_counts_respect_rates(self):
        sampler = PreferentialPathSampler(0.10, seed=5)
        sampler.update_rates({"hot": 0.9, "rare": 0.1})
        hot = sum(sampler.sample_count("hot", 1000) for _ in range(20))
        rare = sum(sampler.sample_count("rare", 1000) for _ in range(20))
        assert rare > hot  # same arrivals, higher rate → more samples

    def test_rare_path_counts_more_balanced_than_uniform(self):
        """The extension's point: per-type *absolute* sample counts under
        preferential sampling are closer together than under uniform."""
        shares = {"hot": 0.9, "rare": 0.1}
        arrivals = {"hot": 900, "rare": 100}
        pref = PreferentialPathSampler(0.10, seed=3)
        pref.update_rates(shares)
        uni = RequestSampler(0.10, seed=3)
        pref_counts = {
            t: sum(pref.sample_count(t, arrivals[t]) for _ in range(30)) for t in shares
        }
        uni_counts = {
            t: sum(uni.sample_count(arrivals[t]) for _ in range(30)) for t in shares
        }
        pref_ratio = pref_counts["hot"] / max(1, pref_counts["rare"])
        uni_ratio = uni_counts["hot"] / max(1, uni_counts["rare"])
        assert pref_ratio < uni_ratio

    def test_unknown_type_falls_back_to_budget(self):
        sampler = PreferentialPathSampler(0.10, seed=1)
        assert sampler.rate_for("never-seen") == 0.10
        n = sampler.sample_count("never-seen", 1000)
        assert 40 < n < 180

    def test_empty_shares_keep_previous_rates(self):
        sampler = PreferentialPathSampler(0.10)
        first = sampler.update_rates({"a": 1.0})
        second = sampler.update_rates({})
        assert second == first
