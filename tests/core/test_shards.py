"""Tests for selective shard-level scaling (Section II-A)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.shards import (
    ShardProfile,
    selective_shard_allocation,
    shard_allocation_agility,
    shard_weights,
    uniform_shard_allocation,
)
from repro.errors import ElasticityError
from repro.sim.replicas import ReplicaSpec, ReplicatedApplicationRuntime
from repro.workloads.generator import RequestClass


class TestShardProfile:
    def _trace(self, pipeline_app, x):
        runtime = ReplicatedApplicationRuntime(
            pipeline_app, {"B": ReplicaSpec(count=4, routing_field="v")}
        )
        return runtime.execute_request(RequestClass("go", "start", {"x": x}))

    def test_observe_accumulates(self, pipeline_app):
        profile = ShardProfile()
        profile.observe(self._trace(pipeline_app, 1))
        profile.observe(self._trace(pipeline_app, 2), weight=3)
        assert profile.requests_observed == 4
        assert profile.component_total("B") == 4

    def test_weight_validation(self, pipeline_app):
        profile = ShardProfile()
        with pytest.raises(ElasticityError):
            profile.observe(self._trace(pipeline_app, 1), weight=0)

    def test_shard_count_mismatch_rejected(self, pipeline_app):
        profile = ShardProfile()
        profile.observe(self._trace(pipeline_app, 1))
        other_runtime = ReplicatedApplicationRuntime(
            pipeline_app, {"B": ReplicaSpec(count=2, routing_field="v")}
        )
        other = other_runtime.execute_request(RequestClass("go", "start", {"x": 1}))
        with pytest.raises(ElasticityError, match="shard count changed"):
            profile.observe(other)


class TestShardWeights:
    def test_weights_normalised(self):
        profile = ShardProfile(counts={"q": [30, 10, 0, 0]})
        assert shard_weights(profile, "q") == [0.75, 0.25, 0.0, 0.0]

    def test_cold_start_uniform(self):
        profile = ShardProfile(counts={"q": [0, 0]})
        assert shard_weights(profile, "q") == [0.5, 0.5]

    def test_unknown_component(self):
        with pytest.raises(ElasticityError):
            shard_weights(ShardProfile(), "ghost")


class TestAllocation:
    def test_selective_follows_weights(self):
        alloc = selective_shard_allocation(10, [0.7, 0.2, 0.1])
        assert sum(alloc) == 10
        assert alloc[0] > alloc[1] >= alloc[2] >= 1
        assert alloc[0] >= 6  # the 0.7-weight shard takes the lion's share

    def test_uniform_is_even(self):
        assert uniform_shard_allocation(8, 4) == [2, 2, 2, 2]

    def test_minimum_per_shard(self):
        alloc = selective_shard_allocation(4, [1.0, 0.0, 0.0, 0.0])
        assert min(alloc) >= 1

    def test_zero_weights_degrade_to_uniform(self):
        assert selective_shard_allocation(6, [0.0, 0.0, 0.0]) == [2, 2, 2]

    def test_validation(self):
        with pytest.raises(ElasticityError):
            selective_shard_allocation(-1, [1.0])
        with pytest.raises(ElasticityError):
            selective_shard_allocation(5, [])
        with pytest.raises(ElasticityError):
            selective_shard_allocation(5, [-0.5, 1.0])

    @given(
        st.integers(0, 100),
        st.lists(st.floats(0, 10), min_size=1, max_size=12),
    )
    @settings(max_examples=150)
    def test_total_preserved(self, total, weights):
        alloc = selective_shard_allocation(total, weights)
        assert sum(alloc) == max(total, len(weights))
        assert all(a >= 1 for a in alloc)


class TestSelectiveBeatsUniform:
    def test_hot_shard_workload(self):
        """The paper's hurricane scenario: 80% of traffic on one shard.

        With the same budget, uniform scaling starves the hot shard and
        idles the cold ones; selective scaling matches demand."""
        demand = [8_000.0, 600.0, 600.0, 800.0]  # ms/min per shard
        capacity = 1_000.0
        budget = 14
        weights = [d / sum(demand) for d in demand]
        selective = selective_shard_allocation(budget, weights)
        uniform = uniform_shard_allocation(budget, 4)
        sel_excess, sel_short = shard_allocation_agility(selective, demand, capacity)
        uni_excess, uni_short = shard_allocation_agility(uniform, demand, capacity)
        assert sel_short < uni_short
        assert sel_excess + sel_short < uni_excess + uni_short

    def test_uniform_demand_makes_them_equal(self):
        demand = [1_000.0] * 4
        weights = [0.25] * 4
        selective = selective_shard_allocation(8, weights)
        uniform = uniform_shard_allocation(8, 4)
        assert selective == uniform

    def test_agility_validation(self):
        with pytest.raises(ElasticityError):
            shard_allocation_agility([1], [100.0], node_capacity=0)
        with pytest.raises(ElasticityError):
            shard_allocation_agility([1], [100.0], 1_000.0, target_utilization=0)


class TestEndToEndShardProfile:
    def test_hot_term_search_profile_drives_selective_allocation(self, search_app):
        """Universal search with one hot term: the traced shard profile
        concentrates, and the resulting allocation gives the hot shard
        strictly more nodes than the uniform split would."""
        from repro.apps.universal_search import WEB_SHARDS

        runtime = ReplicatedApplicationRuntime(
            search_app,
            {"query-index": ReplicaSpec(count=WEB_SHARDS, routing_field="shard")},
        )
        profile = ShardProfile()
        hot = RequestClass("hot", "search", {"kind": "news", "terms": "hurricane"})
        for _ in range(40):
            profile.observe(runtime.execute_request(hot))
        weights = shard_weights(profile, "query-index")
        alloc = selective_shard_allocation(2 * WEB_SHARDS, weights)
        uniform = uniform_shard_allocation(2 * WEB_SHARDS, WEB_SHARDS)
        # News search scans 3 shard slots (0..2): they get all the traffic.
        hot_nodes = sum(a for a, w in zip(alloc, weights) if w > 0)
        hot_uniform = sum(u for u, w in zip(uniform, weights) if w > 0)
        assert hot_nodes > hot_uniform
