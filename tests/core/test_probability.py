"""Unit tests for causal probability and proportional allocation."""

import pytest
from hypothesis import given, strategies as st

from repro.core.paths import signature_from_edges
from repro.core.probability import (
    causal_probabilities,
    component_weights,
    proportional_allocation,
    request_weights,
)
from repro.errors import ElasticityError
from repro.lang.ir import CLIENT, EXTERNAL


def _ecommerce_paths():
    """The paper's Section IV-C example: Purchase and Simple paths."""
    purchase = signature_from_edges(
        "visit",
        [
            (EXTERNAL, "visit", "frontend"),
            ("frontend", "pay", "payment"),
            ("payment", "fulfill", "fulfillment"),
            ("fulfillment", "reserve", "inventory"),
            ("inventory", "lookup", "price-db"),
            ("price-db", "done", CLIENT),
        ],
    )
    simple = signature_from_edges(
        "visit",
        [
            (EXTERNAL, "visit", "frontend"),
            ("frontend", "track", "customer-tracking"),
            ("customer-tracking", "ads", "ad-serving"),
            ("ad-serving", "lookup", "price-db"),
            ("price-db", "done", CLIENT),
        ],
    )
    return purchase, simple


class TestCausalProbabilities:
    def test_normalisation(self):
        probs = causal_probabilities({"a": 69, "b": 31})
        assert probs == {"a": 0.69, "b": 0.31}

    def test_all_zero_counts(self):
        probs = causal_probabilities({"a": 0, "b": 0})
        assert probs == {"a": 0.0, "b": 0.0}

    def test_zero_count_path_gets_zero(self):
        probs = causal_probabilities({"a": 10, "b": 0})
        assert probs["b"] == 0.0

    @given(st.dictionaries(st.text(min_size=1, max_size=5), st.integers(0, 10_000), min_size=1))
    def test_probabilities_sum_to_one_or_zero(self, counts):
        probs = causal_probabilities(counts)
        total = sum(probs.values())
        if sum(counts.values()) == 0:
            assert total == 0.0
        else:
            assert total == pytest.approx(1.0)


class TestComponentWeights:
    def test_paper_example_weights(self):
        """Purchase 0.69 / Simple 0.31 ⇒ front-end 1.0, Price DB 1.0,
        Payment 0.69, Ad Serving 0.31 (Section IV-C)."""
        purchase, simple = _ecommerce_paths()
        paths = {purchase.path_id: purchase, simple.path_id: simple}
        probs = {purchase.path_id: 0.69, simple.path_id: 0.31}
        weights = component_weights(probs, paths)
        assert weights["frontend"] == pytest.approx(1.0)
        assert weights["price-db"] == pytest.approx(1.0)
        assert weights["payment"] == pytest.approx(0.69)
        assert weights["fulfillment"] == pytest.approx(0.69)
        assert weights["customer-tracking"] == pytest.approx(0.31)
        assert weights["ad-serving"] == pytest.approx(0.31)

    def test_unknown_path_id_raises(self):
        with pytest.raises(ElasticityError):
            component_weights({"ghost": 0.5}, {})

    def test_zero_probability_paths_skipped(self):
        purchase, _ = _ecommerce_paths()
        weights = component_weights({purchase.path_id: 0.0}, {purchase.path_id: purchase})
        assert weights == {}


class TestRequestWeights:
    def test_grouping_by_request_type(self):
        purchase, simple = _ecommerce_paths()
        paths = {purchase.path_id: purchase, simple.path_id: simple}
        probs = {purchase.path_id: 0.69, simple.path_id: 0.31}
        rw = request_weights(probs, paths)
        assert rw == {"visit": pytest.approx(1.0)}


class TestProportionalAllocation:
    def test_paper_arithmetic(self):
        """30 machines split 10 / 7+7 / 3+3 per the paper's example."""
        weights = {
            "frontend": 1.0,
            "price-db": 0.69,
            "inventory": 0.69,
            "customer-tracking": 0.31,
            "ad-serving": 0.31,
        }
        alloc = proportional_allocation(30, weights, weights.keys())
        assert alloc["frontend"] == 10
        assert alloc["price-db"] == 7
        assert alloc["inventory"] == 7
        assert alloc["customer-tracking"] == 3
        assert alloc["ad-serving"] == 3

    def test_minimum_per_component(self):
        alloc = proportional_allocation(10, {"a": 1.0}, ["a", "b"])
        assert alloc["b"] == 1

    def test_no_weights_splits_evenly(self):
        alloc = proportional_allocation(9, {}, ["a", "b", "c"])
        assert alloc == {"a": 3, "b": 3, "c": 3}

    def test_negative_total_rejected(self):
        with pytest.raises(ElasticityError):
            proportional_allocation(-1, {"a": 1.0}, ["a"])

    @given(
        st.integers(0, 200),
        st.dictionaries(st.sampled_from(["a", "b", "c"]), st.floats(0, 10), min_size=1),
    )
    def test_allocation_respects_minimum(self, total, weights):
        alloc = proportional_allocation(total, weights, ["a", "b", "c"])
        assert all(v >= 1 for v in alloc.values())
