"""Differential soundness tests for DCA's static analysis.

The load-bearing property of the whole paper: variables *outside*
``V_out`` provably cannot influence any emission.  We test it
differentially on randomly generated components: perturb the initial
value of a variable the analysis excluded, re-run every handler, and
assert every emitted message is byte-identical.  Conversely, perturbing
a variable *inside* ``S_out`` of some send must be able to change an
emission for at least some generated program (a smoke check that the
analysis is not vacuously conservative).
"""

from hypothesis import given, settings, strategies as st

from repro.core.dca import analyze_component
from repro.lang.builder import ComponentBuilder, field, var
from repro.lang.interpreter import Interpreter, ReplicaState
from repro.lang.ir import CLIENT, EXTERNAL, default_library
from repro.lang.message import Message, UidFactory

STATE_VARS = ("a", "b", "c", "d")
FIELDS = ("x", "y")


@st.composite
def random_component(draw):
    """A random component: 2 handlers, assignments/branches/sends."""
    cb = ComponentBuilder("R")
    for name in STATE_VARS:
        cb.state(name, draw(st.integers(0, 5)))

    def rand_expr(depth=0):
        choice = draw(st.integers(0, 5 if depth < 2 else 2))
        if choice == 0:
            return var(draw(st.sampled_from(STATE_VARS)))
        if choice == 1:
            return field("m", draw(st.sampled_from(FIELDS)))
        if choice == 2:
            return draw(st.integers(0, 9))
        left, right = rand_expr(depth + 1), rand_expr(depth + 1)
        op = draw(st.sampled_from(["+", "-", "*"]))
        from repro.lang.ir import BinOp, as_expr

        return BinOp(op, as_expr(left), as_expr(right))

    def rand_block(h, depth, allow_send):
        n = draw(st.integers(1, 3))
        for _ in range(n):
            kind = draw(st.integers(0, 3 if allow_send else 2))
            if kind in (0, 1):
                h.assign(draw(st.sampled_from(STATE_VARS)), rand_expr())
            elif kind == 2 and depth < 2:
                branch = h.if_(rand_expr() > draw(st.integers(0, 6)))
                rand_block(branch.then, depth + 1, allow_send)
                rand_block(branch.orelse, depth + 1, allow_send)
                branch.done()
            elif kind == 3:
                h.send(
                    "out",
                    CLIENT,
                    {"v": rand_expr(), "w": rand_expr()},
                )

    with cb.on("h1", "m") as h:
        rand_block(h, 0, allow_send=draw(st.booleans()))
    with cb.on("h2", "m") as h:
        rand_block(h, 0, allow_send=True)
    return cb.build()


def _run_all_handlers(component, initial_overrides):
    """Run h1 then h2 from a fresh state; return all emitted payloads."""
    interp = Interpreter(component, default_library())
    state = ReplicaState.from_component(component)
    state.values.update(initial_overrides)
    uids = UidFactory("10.0.0.1", 1)
    ext = UidFactory("client", 0)
    emitted = []
    for msg_type in ("h1", "h2"):
        msg = Message(ext.next_uid(), msg_type, EXTERNAL, "R", {"x": 3, "y": 4})
        outcome = interp.handle(state, msg, uids)
        emitted.extend(tuple(sorted(m.fields.items())) for m in outcome.emitted)
    return emitted


class TestNonVOutCannotInfluenceEmissions:
    @given(random_component(), st.integers(100, 10_000))
    @settings(max_examples=120, deadline=None)
    def test_perturbing_excluded_variable_never_changes_output(self, component, perturbation):
        analysis = analyze_component(component)
        excluded = set(STATE_VARS) - set(analysis.v_out)
        baseline = _run_all_handlers(component, {})
        for victim in sorted(excluded):
            perturbed = _run_all_handlers(component, {victim: perturbation})
            assert perturbed == baseline, (
                f"variable {victim!r} is outside V_out={sorted(analysis.v_out)} "
                "but changing it changed an emission"
            )


class TestAnalysisIsNotVacuous:
    def test_s_out_variable_can_change_output(self):
        """Sanity: a variable the analysis keeps really does matter."""
        cb = ComponentBuilder("R").state("a", 1)
        with cb.on("h1", "m") as h:
            h.send("out", CLIENT, {"v": var("a") * 2})
        with cb.on("h2", "m") as h:
            h.skip()
        component = cb.build()
        analysis = analyze_component(component)
        assert "a" in analysis.v_out
        assert _run_all_handlers(component, {}) != _run_all_handlers(component, {"a": 99})

    @given(random_component())
    @settings(max_examples=60, deadline=None)
    def test_v_tr_subset_of_v_out_and_v_in(self, component):
        analysis = analyze_component(component)
        all_in = set()
        for v_in in analysis.v_in.values():
            all_in |= v_in
        assert analysis.v_tr <= analysis.v_out
        assert analysis.v_tr <= all_in
