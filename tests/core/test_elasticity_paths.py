"""Additional DCA-manager paths: capacity floor, forecast, contention signal."""

import pytest

from repro.autoscale.manager import ClusterObservation, ComponentObservation
from repro.core.elasticity import DCAElasticityManager, DCAManagerConfig
from repro.core.regression import LinearCapacityModel, MachineSpec
from repro.core.paths import signature_from_edges
from repro.lang.ir import CLIENT, EXTERNAL
from repro.profiling.profiler import CausalPathProfiler

MACHINE = MachineSpec(capacity_ms_per_minute=1_875.0)


def _profiler():
    sig = signature_from_edges(
        "go", [(EXTERNAL, "go", "front"), ("front", "x", "mid"), ("mid", "done", CLIENT)]
    )
    return CausalPathProfiler({"go": [sig]}), sig


def _obs(time=10.0, arrivals=300.0, comps=None, latency=100.0):
    return ClusterObservation(
        time_minutes=time,
        external_arrivals_per_min=arrivals,
        components=comps or {},
        machine=MACHINE,
        sla_latency_ms=500.0,
        app_latency_ms=latency,
        app_throughput_per_min=arrivals,
    )


def _comp(name, nodes=5, util=0.75, pending=0):
    return ComponentObservation(component=name, nodes=nodes, pending_nodes=pending, utilization=util)


class TestForecast:
    def test_forecast_extrapolates_rising_trend(self):
        profiler, _ = _profiler()
        manager = DCAElasticityManager(profiler, MACHINE)
        obs1 = _obs(arrivals=100.0, comps={"front": _comp("front")})
        manager.decide(obs1)
        manager.on_interval_end(obs1)
        # Next interval: arrivals jumped to 120; forecast should exceed 120.
        assert manager._forecast_arrivals(120.0) > 120.0

    def test_forecast_ignores_falling_trend(self):
        profiler, _ = _profiler()
        manager = DCAElasticityManager(profiler, MACHINE)
        obs1 = _obs(arrivals=200.0, comps={"front": _comp("front")})
        manager.decide(obs1)
        manager.on_interval_end(obs1)
        assert manager._forecast_arrivals(100.0) == pytest.approx(100.0)

    def test_forecast_capped(self):
        profiler, _ = _profiler()
        config = DCAManagerConfig(max_forecast_ratio=1.2)
        manager = DCAElasticityManager(profiler, MACHINE, config=config)
        obs1 = _obs(arrivals=10.0, comps={"front": _comp("front")})
        manager.decide(obs1)
        manager.on_interval_end(obs1)
        assert manager._forecast_arrivals(1_000.0) <= 1_200.0 + 1e-9


class TestCapacityFloor:
    def _trained_manager(self, profiler):
        model = LinearCapacityModel()
        # Teach the model that this workload needs ~40 machines.
        for i in range(12):
            model.observe(MACHINE, workload=300.0, throughput=290.0, latency_ms=100.0,
                          machines_needed=40.0)
        return DCAElasticityManager(profiler, MACHINE, capacity_model=model)

    def test_floor_tops_up_underallocation(self):
        profiler, sig = _profiler()
        manager = self._trained_manager(profiler)
        profiler.record(sig, 9.0, count=200)
        # Current targets would be tiny (2 nodes); the model says 40.
        obs = _obs(comps={"front": _comp("front", nodes=1, util=0.5),
                          "mid": _comp("mid", nodes=1, util=0.5)})
        decision = manager.decide(obs)
        assert sum(decision.targets.values()) >= 0.85 * 40

    def test_floor_inactive_when_targets_sufficient(self):
        profiler, sig = _profiler()
        manager = self._trained_manager(profiler)
        profiler.record(sig, 9.0, count=200)
        obs = _obs(comps={"front": _comp("front", nodes=30, util=0.74),
                          "mid": _comp("mid", nodes=30, util=0.74)})
        decision = manager.decide(obs)
        # No huge top-up beyond the κ-sizing.
        assert sum(decision.targets.values()) <= 75


class TestEngineContention:
    def test_lock_contention_signal(self):
        from repro.sim.cluster import ComponentGroup, DeploymentSpec
        from repro.sim.engine import ClusterSimulator

        serial = ComponentGroup("q", DeploymentSpec(initial_nodes=5, serial_limit=3))
        # offered >> serial capacity ⇒ contention near 1.
        high = ClusterSimulator._lock_contention(serial, offered_ms=3 * 1_000 * 1.5, node_cap=1_000)
        low = ClusterSimulator._lock_contention(serial, offered_ms=3 * 1_000 * 0.3, node_cap=1_000)
        assert high > 0.9
        assert low == 0.0

    def test_no_contention_without_serial_limit(self):
        from repro.sim.cluster import ComponentGroup, DeploymentSpec
        from repro.sim.engine import ClusterSimulator

        group = ComponentGroup("q", DeploymentSpec(initial_nodes=5))
        assert ClusterSimulator._lock_contention(group, offered_ms=1e9, node_cap=1_000) == 0.0
