"""Unit tests for the DCA analyzer beyond the Fig. 4 example."""

import pytest

from repro.core.dca import analyze_application, analyze_component
from repro.errors import AnalysisError
from repro.lang.builder import ComponentBuilder, field, var
from repro.lang.ir import CLIENT


class TestVOutTransitivity:
    def test_indirect_influence_through_tracked_write(self):
        """u influences a write to z, and z influences a send ⇒ u ∈ V_out."""
        cb = ComponentBuilder("A").state("z", 0).state("u", 0)
        with cb.on("update", "m") as h:
            h.assign("z", var("u") + field("m", "x"))
        with cb.on("emit", "m") as h:
            h.send("out", CLIENT, {"v": var("z")})
        analysis = analyze_component(cb.build())
        assert "z" in analysis.v_out
        assert "u" in analysis.v_out

    def test_chain_of_three(self):
        cb = ComponentBuilder("A").state("a", 0).state("b", 0).state("c", 0)
        with cb.on("s1", "m") as h:
            h.assign("b", var("a"))
        with cb.on("s2", "m") as h:
            h.assign("c", var("b"))
        with cb.on("emit", "m") as h:
            h.send("out", CLIENT, {"v": var("c")})
        analysis = analyze_component(cb.build())
        assert analysis.v_out == frozenset({"a", "b", "c"})

    def test_pure_sink_variable_excluded(self):
        cb = ComponentBuilder("A").state("z", 0).state("log_count", 0)
        with cb.on("go", "m") as h:
            h.assign("z", field("m", "x"))
            h.assign("log_count", var("log_count") + 1)
            h.send("out", CLIENT, {"v": var("z")})
        analysis = analyze_component(cb.build())
        assert "log_count" not in analysis.v_out
        # z is always rewritten before the send within the same handler
        # invocation, so its *entry* value never influences an emission:
        # the invocation-local taint overlay carries the flow and no
        # cross-invocation tracking is needed.
        assert analysis.v_tr == frozenset()


class TestControlFlowInfluence:
    def test_gate_variable_in_v_out(self):
        cb = ComponentBuilder("A").state("gate", 0)
        with cb.on("setgate", "m") as h:
            h.assign("gate", field("m", "g"))
        with cb.on("emit", "m") as h:
            with h.if_(var("gate") > 0) as br:
                br.then.send("out", CLIENT, {"v": 1})
        analysis = analyze_component(cb.build())
        assert "gate" in analysis.v_out
        assert "gate" in analysis.v_tr


class TestComponentWithNoSends:
    def test_sink_component_tracks_nothing(self):
        cb = ComponentBuilder("Sink").state("total", 0)
        with cb.on("absorb", "m") as h:
            h.assign("total", var("total") + field("m", "x"))
        analysis = analyze_component(cb.build())
        assert analysis.v_out == frozenset()
        assert analysis.v_tr == frozenset()
        assert analysis.v_in["absorb"] == frozenset({"total"})


class TestApplicationAnalysis:
    def test_pipeline(self, pipeline_app):
        result = analyze_application(pipeline_app)
        # A's accumulator reads its previous value, so its entry value
        # influences every send: cross-invocation tracking required.
        assert result.tracked_vars("A") == frozenset({"acc"})
        # B's `last` is rewritten before its only read, within one
        # invocation: the overlay suffices, nothing is persisted.
        assert result.tracked_vars("B") == frozenset()
        assert result.tracked_vars("C") == frozenset()

    def test_unknown_component_raises(self, pipeline_app):
        result = analyze_application(pipeline_app)
        with pytest.raises(AnalysisError):
            result.tracked_vars("nope")

    def test_total_tracked_vars(self, pipeline_app):
        result = analyze_application(pipeline_app)
        assert result.total_tracked_vars() == 1

    def test_state_var_count_and_fraction(self, pipeline_app):
        result = analyze_application(pipeline_app)
        a = result.per_component["A"]
        assert a.state_var_count == 2  # acc + stats
        assert a.tracked_fraction == 0.5

    def test_real_apps_analyse_cleanly(self, search_app, shop_app, trading_app, pubsub_app, coord_app):
        for app in (search_app, shop_app, trading_app, pubsub_app, coord_app):
            result = analyze_application(app)
            assert set(result.per_component) == set(app.components)

    def test_quorum_log_tracks_nothing_outbound(self, coord_app):
        """The zookeeper quorum log never sends, so V_out must be empty."""
        result = analyze_application(coord_app)
        assert result.per_component["quorum-log"].v_out == frozenset()
