"""The chaos replay contract: 25 seeded cells reproduce bit-identically.

``repro chaos --replay <cell-id>`` must regenerate a failing run's full
telemetry snapshot digest, violations, and event stream from the cell id
alone — in a fresh process, under either engine, and under sketch
profiler modes.  The 25-cell subset below is the matrix's own
deterministic selection, so it provably spans both engines, both
profiler modes, and every store configuration.

Also covered: replay bundles (write/load round-trip plus the hardened
loader's failure cases) and the parallel runner's serial equivalence.
"""

import json

import pytest

from repro.chaos.matrix import ChaosMatrix, MatrixConfig
from repro.chaos.runner import (
    CellRunResult,
    load_replay_bundle,
    replay_cell,
    run_cell,
    run_matrix,
    write_replay_bundle,
)
from repro.chaos.invariants import Violation
from repro.errors import EvaluationError, ParityArtifactError

#: Short-duration matrix so 25 cells x 2 runs stay tier-1 friendly.
MATRIX = ChaosMatrix(MatrixConfig(duration_minutes=20))
CELLS = MATRIX.select(25)


def test_subset_spans_the_interesting_axes():
    """The 25-seed property sweep must include event-engine and topk cells."""
    assert len(CELLS) == 25
    assert {c.engine for c in CELLS} == {"tick", "event"}
    assert {c.profiler_mode for c in CELLS} == {"exact", "topk"}
    assert len({c.seed for c in CELLS}) == 25


class TestReplayBitIdentical:
    @pytest.mark.parametrize(
        "cell", CELLS, ids=[f"{c.cell_id}-{c.engine}-{c.profiler_mode}" for c in CELLS]
    )
    def test_replay_reproduces_the_run(self, cell):
        original = run_cell(cell)
        # replay_cell itself raises EvaluationError on digest mismatch.
        replayed = replay_cell(
            MATRIX, cell.cell_id, expected_digest=original.telemetry_digest
        )
        assert replayed.telemetry_digest == original.telemetry_digest
        assert replayed.violations == original.violations
        assert replayed.event_counts == original.event_counts
        assert replayed.headline == original.headline
        assert replayed.seed == original.seed

    def test_repeat_replays_with_its_own_seed(self):
        cell = CELLS[0]
        first = run_cell(cell, repeat=1)
        again = replay_cell(
            MATRIX, cell.cell_id, repeat=1, expected_digest=first.telemetry_digest
        )
        assert again.telemetry_digest == first.telemetry_digest
        assert again.seed == cell.seed_for(1)
        # Different repeats are genuinely different runs.
        assert run_cell(cell, repeat=0).telemetry_digest != first.telemetry_digest

    def test_digest_mismatch_fails_loudly(self):
        with pytest.raises(EvaluationError, match="not replaying"):
            replay_cell(MATRIX, CELLS[0].cell_id, expected_digest="0" * 64)


class TestRunMatrix:
    def test_parallel_equals_serial(self):
        cells = MATRIX.select(4)
        serial = run_matrix(cells, repeats=2, workers=1)
        parallel = run_matrix(cells, repeats=2, workers=2)
        assert len(serial) == len(parallel) == 4
        for s_report, p_report in zip(serial, parallel):
            assert s_report.cell == p_report.cell
            for s_run, p_run in zip(s_report.runs, p_report.runs):
                assert s_run.telemetry_digest == p_run.telemetry_digest
                assert s_run.violations == p_run.violations
                assert s_run.event_counts == p_run.event_counts

    def test_score_covers_all_runs(self):
        reports = run_matrix(MATRIX.select(2), repeats=2, workers=1)
        for report in reports:
            assert report.score.runs == 2
            if report.passed:
                assert report.score.raw_rate == 1.0

    def test_bad_repeats_rejected(self):
        with pytest.raises(EvaluationError):
            run_matrix(MATRIX.select(1), repeats=0)

    def test_failing_runs_write_bundles(self, tmp_path, monkeypatch):
        from repro.chaos import runner as runner_mod

        cell = MATRIX.cell_at(0)

        def fake_run_cell(cell_arg, repeat=0, store_backend="memory", store_dir=None):
            return CellRunResult(
                cell_id=cell_arg.cell_id,
                repeat=repeat,
                seed=cell_arg.seed_for(repeat),
                violations=[Violation("no-resurrection", 5.0, "synthetic")],
                telemetry_digest="f" * 64,
                event_counts={"path_abandoned": 1},
                headline={},
            )

        monkeypatch.setattr(runner_mod, "run_cell", fake_run_cell)
        reports = run_matrix(
            [cell], repeats=2, workers=1, bundle_dir=str(tmp_path)
        )
        assert not reports[0].passed
        bundles = sorted(p.name for p in tmp_path.glob("chaos-*.json"))
        assert bundles == [
            f"chaos-{cell.cell_id}-r0.json",
            f"chaos-{cell.cell_id}-r1.json",
        ]


class TestReplayBundles:
    def _result(self, cell):
        return CellRunResult(
            cell_id=cell.cell_id,
            repeat=0,
            seed=cell.seed,
            violations=[Violation("replica-accounting", 3.0, "count moved")],
            telemetry_digest="a" * 64,
            event_counts={"replica_observed": 7},
            headline={"tracker.dead_letters": 2.0},
        )

    def test_roundtrip(self, tmp_path):
        cell = MATRIX.cell_at(140)
        path = write_replay_bundle(str(tmp_path), cell, self._result(cell))
        data = load_replay_bundle(path)
        assert data["cell_id"] == cell.cell_id
        assert data["telemetry_digest"] == "a" * 64
        assert data["violations"][0]["invariant"] == "replica-accounting"
        # The embedded cell dict regenerates the exact cell.
        from repro.chaos.matrix import ChaosCell

        assert ChaosCell.from_dict(data["cell"]) == cell

    def test_missing_bundle_rejected(self, tmp_path):
        with pytest.raises(ParityArtifactError, match="not found"):
            load_replay_bundle(str(tmp_path / "nope.json"))

    def test_empty_bundle_rejected(self, tmp_path):
        path = tmp_path / "chaos-empty.json"
        path.write_text("   \n")
        with pytest.raises(ParityArtifactError, match="empty"):
            load_replay_bundle(str(path))

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "chaos-trunc.json"
        path.write_text('{"cell": {"grid_index": 3')
        with pytest.raises(ParityArtifactError, match="not valid JSON"):
            load_replay_bundle(str(path))

    def test_non_object_rejected(self, tmp_path):
        path = tmp_path / "chaos-list.json"
        path.write_text("[1, 2]")
        with pytest.raises(ParityArtifactError, match="JSON object"):
            load_replay_bundle(str(path))

    def test_missing_keys_rejected(self, tmp_path):
        path = tmp_path / "chaos-partial.json"
        path.write_text(json.dumps({"cell_id": "000-abc", "repeat": 0}))
        with pytest.raises(ParityArtifactError, match="missing required keys"):
            load_replay_bundle(str(path))
