"""Wilson intervals, Good-Turing unseen mass, and cell scoring."""

import math

import pytest

from repro.chaos.reliability import (
    good_turing_unseen_mass,
    reliability_score,
    wilson_interval,
)

PASS = frozenset()
FAIL_A = frozenset({"dead-letter-exclusion"})
FAIL_B = frozenset({"no-resurrection"})


class TestWilsonInterval:
    def test_zero_n_is_vacuous(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_bounds_are_clamped_and_ordered(self):
        for successes, n in [(0, 5), (5, 5), (3, 5), (1, 100), (99, 100)]:
            low, high = wilson_interval(successes, n)
            assert 0.0 <= low <= high <= 1.0

    def test_perfect_small_sample_is_not_certainty(self):
        """3/3 passed must not read as [1.0, 1.0]."""
        low, high = wilson_interval(3, 3)
        assert low < 0.5
        assert high == 1.0

    def test_interval_narrows_with_n(self):
        low_small, high_small = wilson_interval(8, 10)
        low_big, high_big = wilson_interval(800, 1000)
        assert (high_big - low_big) < (high_small - low_small)
        # Both contain the true rate.
        assert low_big < 0.8 < high_big

    def test_invalid_successes_rejected(self):
        with pytest.raises(ValueError):
            wilson_interval(6, 5)
        with pytest.raises(ValueError):
            wilson_interval(-1, 5)


class TestGoodTuring:
    def test_empty_outcomes_reserve_everything(self):
        assert good_turing_unseen_mass([]) == 1.0

    def test_singleton_mass(self):
        # Two distinct singletons out of four runs -> N1/N = 0.5.
        outcomes = [PASS, PASS, FAIL_A, FAIL_B]
        assert good_turing_unseen_mass(outcomes) == pytest.approx(0.5)

    def test_no_singletons_hits_the_floor(self):
        outcomes = [PASS] * 6
        assert good_turing_unseen_mass(outcomes) == pytest.approx(1.0 / 12)

    def test_signature_identity_not_object_identity(self):
        """Equal frozensets are one outcome class, however constructed."""
        outcomes = [frozenset({"x"}), frozenset({"x"})]
        assert good_turing_unseen_mass(outcomes) == pytest.approx(1.0 / 4)


class TestReliabilityScore:
    def test_all_pass(self):
        score = reliability_score([PASS] * 4)
        assert score.runs == 4
        assert score.passes == 4
        assert score.raw_rate == 1.0
        assert score.unseen_mass == pytest.approx(1.0 / 8)
        assert score.adjusted_rate == pytest.approx(1.0 - 1.0 / 8)
        assert score.ci_low < 1.0 <= score.ci_high

    def test_mixed_outcomes(self):
        score = reliability_score([PASS, PASS, FAIL_A, FAIL_A])
        assert score.passes == 2
        assert score.raw_rate == 0.5
        # No singletons: floor mass.
        assert score.unseen_mass == pytest.approx(1.0 / 8)
        assert score.adjusted_rate == pytest.approx(0.5 * (1.0 - 1.0 / 8))

    def test_adjusted_never_exceeds_raw(self):
        for outcomes in ([PASS], [PASS, FAIL_A], [PASS] * 10, [FAIL_A, FAIL_B]):
            score = reliability_score(outcomes)
            assert score.adjusted_rate <= score.raw_rate
            assert 0.0 <= score.adjusted_rate <= 1.0

    def test_single_run_is_maximally_uncertain(self):
        """repeats=1 gives a singleton: all mass is unseen, adjusted=0."""
        score = reliability_score([PASS])
        assert score.raw_rate == 1.0
        assert score.unseen_mass == 1.0
        assert score.adjusted_rate == 0.0

    def test_empty_run_set(self):
        score = reliability_score([])
        assert score.runs == 0
        assert score.raw_rate == 0.0
        assert (score.ci_low, score.ci_high) == (0.0, 1.0)

    def test_to_dict_is_json_shaped(self):
        payload = reliability_score([PASS, FAIL_A]).to_dict()
        assert set(payload) == {
            "runs",
            "passes",
            "raw_rate",
            "adjusted_rate",
            "ci_low",
            "ci_high",
            "unseen_mass",
        }
        assert all(
            isinstance(v, (int, float)) and math.isfinite(v)
            for v in payload.values()
        )
