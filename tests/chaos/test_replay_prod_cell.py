"""Chaos coverage for the newly replay-eligible production configs.

Eligibility relaxation (sharded/batched memory stores may freeze and
replay) must not leak into the chaos matrix: every faulted cell takes
the full-fidelity path regardless of store shape, the pinned 288-cell
grid is untouched, and the fault-free production config passes the
temporal invariants *with the cutover engaged*.  Worker fan-out over
the production cells stays bit-identical to a serial sweep — the same
digest contract the store-backend override tests pin.
"""

from repro.apps.catalog import load_scenario
from repro.chaos.invariants import check_all
from repro.chaos.matrix import ChaosMatrix, MatrixConfig
from repro.chaos.runner import run_matrix
from repro.core.elasticity import DCAManagerConfig, StalenessPolicy
from repro.evalx.experiment import DCA_RATES, ExperimentConfig, build_simulator
from repro.sim.engine import SimulationConfig
from repro.sim.tap import SimTap
from repro.telemetry import MetricsRegistry

MATRIX = ChaosMatrix(MatrixConfig(duration_minutes=20))
_SELECTED = MATRIX.select(25)
#: The production store shape (--shards 4 --batch-size 32) on the event
#: engine, one cell per profiler tier.
PROD_EXACT_EVENT = next(
    c
    for c in _SELECTED
    if c.engine == "event"
    and c.num_shards == 4
    and c.write_batch_size == 32
    and c.profiler_mode == "exact"
)
PROD_TOPK_EVENT = next(
    c
    for c in _SELECTED
    if c.engine == "event"
    and c.num_shards == 4
    and c.write_batch_size == 32
    and c.profiler_mode == "topk"
)


def test_grid_stays_pinned():
    """Relaxed eligibility is a runtime fast path, not a matrix axis."""
    assert MATRIX.total_cells == 288


def _run_cell_exposing_simulator(cell):
    """Exactly ``run_cell``'s wiring, but keeping the simulator around
    so the test can inspect the event runner's replay state."""
    scenario = load_scenario(cell.app)
    config = ExperimentConfig(
        duration_minutes=cell.duration_minutes,
        seed=cell.seed_for(0),
        num_shards=cell.num_shards,
        write_batch_size=cell.write_batch_size,
        engine=cell.engine,
        profiler_mode=cell.profiler_mode,
    )
    registry = MetricsRegistry()
    tap = SimTap()
    manager_config = None
    rate = DCA_RATES.get(cell.manager)
    if rate is not None:
        manager_config = DCAManagerConfig(
            sampling_rate=rate, staleness=StalenessPolicy()
        )
    simulator = build_simulator(
        scenario,
        cell.manager,
        config,
        registry=registry,
        fault_plan=cell.fault_plan(0),
        path_timeout_minutes=cell.path_timeout_minutes,
        manager_config=manager_config,
        tap=tap,
    )
    simulator.run()
    return simulator, tap


class TestFaultedProductionCellsStayFullFidelity:
    def test_faulted_prod_cells_never_engage_replay(self):
        """Sharded/batched is now replay-eligible — but only fault-free:
        a faulted cell must still run full-fidelity ingestion and pass
        every temporal invariant."""
        for cell in (PROD_EXACT_EVENT, PROD_TOPK_EVENT):
            simulator, tap = _run_cell_exposing_simulator(cell)
            assert simulator.event_runner.ingestor is None, cell.cell_id
            detector = getattr(simulator.manager, "staleness_detector", None)
            fresh_after = (
                detector.policy.fresh_after_intervals if detector is not None else 2
            )
            violations = check_all(tap, fresh_after_intervals=fresh_after)
            assert not violations, (cell.cell_id, violations)


class TestFaultFreeProductionConfigUnderInvariants:
    def test_cutover_run_passes_temporal_invariants(self):
        """The fast path itself under the chaos lens: a fault-free
        sharded/batched run with the cutover engaged must satisfy the
        same invariant set the matrix audits."""
        config = ExperimentConfig(
            duration_minutes=24,
            seed=7,
            sim=SimulationConfig(max_live_traces_per_class=16),
            engine="event",
            num_shards=4,
            write_batch_size=32,
        )
        tap = SimTap()
        simulator = build_simulator(
            load_scenario("marketcetera"),
            "DCA-100%",
            config,
            registry=MetricsRegistry(),
            tap=tap,
        )
        simulator.run()
        ingestor = simulator.event_runner.ingestor
        assert ingestor is not None and ingestor.replaying
        assert not check_all(tap)


class TestWorkerSweepOverProductionCells:
    def test_pool_sweep_matches_serial_digests(self):
        """--workers fan-out over the production cells (both profiler
        tiers, sketch state included) reproduces the serial sweep
        bit-for-bit."""
        cells = [PROD_EXACT_EVENT, PROD_TOPK_EVENT]
        pooled = run_matrix(cells, repeats=1, workers=2)
        serial = run_matrix(cells, repeats=1, workers=1)
        for pool_report, serial_report in zip(pooled, serial):
            assert pool_report.cell.cell_id == serial_report.cell.cell_id
            for pool_run, serial_run in zip(pool_report.runs, serial_report.runs):
                assert pool_run.telemetry_digest == serial_run.telemetry_digest
                assert pool_run.violations == serial_run.violations
                assert pool_run.headline == serial_run.headline
