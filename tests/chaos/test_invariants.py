"""Each temporal-invariant checker against hand-built event streams.

The checkers are pure functions of the :class:`~repro.sim.tap.TapEvent`
stream, so every property — and every *non*-violation a naive checker
might flag — can be pinned with a few synthetic events, no simulation
required.
"""

from repro.chaos.invariants import (
    INVARIANT_NAMES,
    REENGAGE_SLACK,
    check_all,
    check_dead_letter_exclusion,
    check_fallback_reengagement,
    check_no_resurrection,
    check_replica_accounting,
)
from repro.sim.tap import SimTap, TapEvent


def _ev(minute, kind, **data):
    return TapEvent(minute, kind, data)


class TestDeadLetterExclusion:
    def test_clean_stream_passes(self):
        events = [
            _ev(1.0, "dead_letter", uid="u1", root="r1"),
            _ev(2.0, "path_completed", root="r2", members=("r2", "u2")),
        ]
        assert check_dead_letter_exclusion(events) == []

    def test_dead_uid_in_completed_path_is_violation(self):
        events = [
            _ev(1.0, "dead_letter", uid="u1", root="r1"),
            _ev(3.0, "path_completed", root="r1", members=("r1", "u1", "u3")),
        ]
        violations = check_dead_letter_exclusion(events)
        assert len(violations) == 1
        assert violations[0].invariant == "dead-letter-exclusion"
        assert violations[0].minute == 3.0
        assert "u1" in violations[0].detail

    def test_order_matters(self):
        """A uid dead-lettered *after* the completion is not a leak."""
        events = [
            _ev(1.0, "path_completed", root="r1", members=("r1", "u1")),
            _ev(2.0, "dead_letter", uid="u1", root="r1"),
        ]
        assert check_dead_letter_exclusion(events) == []

    def test_purge_does_not_lift_exclusion(self):
        events = [
            _ev(1.0, "dead_letter", uid="u1", root="r1"),
            _ev(2.0, "dead_letter_purged", uid="u1", root="r1"),
            _ev(3.0, "path_completed", root="r1", members=("u1",)),
        ]
        assert len(check_dead_letter_exclusion(events)) == 1


class TestNoResurrection:
    def test_clean_stream_passes(self):
        events = [
            _ev(1.0, "path_abandoned", root="r1"),
            _ev(2.0, "path_completed", root="r2", members=("r2",)),
            _ev(3.0, "late_message_discarded", root="r1"),
        ]
        assert check_no_resurrection(events) == []

    def test_completion_after_abandonment_is_violation(self):
        events = [
            _ev(1.0, "path_abandoned", root="r1"),
            _ev(5.0, "path_completed", root="r1", members=("r1",)),
        ]
        violations = check_no_resurrection(events)
        assert [v.invariant for v in violations] == ["no-resurrection"]
        assert "completed afterwards" in violations[0].detail

    def test_double_abandonment_is_violation(self):
        events = [
            _ev(1.0, "path_abandoned", root="r1"),
            _ev(2.0, "path_abandoned", root="r1"),
        ]
        violations = check_no_resurrection(events)
        assert len(violations) == 1
        assert "abandoned twice" in violations[0].detail

    def test_defensive_resurrection_event_is_violation(self):
        events = [
            _ev(1.0, "path_abandoned", root="r1"),
            _ev(2.0, "root_resurrected", root="r1"),
        ]
        violations = check_no_resurrection(events)
        assert len(violations) == 1
        assert "re-entered the store" in violations[0].detail


class TestFallbackReengagement:
    def _staleness(self, minute, healthy, engaged):
        return _ev(minute, "staleness", healthy=healthy, engaged=engaged)

    def test_no_staleness_events_passes(self):
        assert check_fallback_reengagement([_ev(0.0, "replica_init",
                                                component="a", ready=2)]) == []

    def test_release_within_budget_passes(self):
        budget = 2 + REENGAGE_SLACK
        events = [self._staleness(float(m), False, True) for m in range(3)]
        events += [
            self._staleness(3.0 + i, True, True) for i in range(budget)
        ]
        events.append(self._staleness(3.0 + budget, True, False))
        assert check_fallback_reengagement(events, fresh_after_intervals=2) == []

    def test_stuck_fallback_is_one_violation_per_stretch(self):
        budget = 2 + REENGAGE_SLACK
        events = [
            self._staleness(float(i), True, True) for i in range(budget + 3)
        ]
        violations = check_fallback_reengagement(events, fresh_after_intervals=2)
        assert len(violations) == 1
        assert violations[0].invariant == "fallback-reengagement"
        assert violations[0].minute == float(budget)

    def test_unhealthy_observation_resets_the_streak(self):
        budget = 2 + REENGAGE_SLACK
        events = [self._staleness(float(i), True, True) for i in range(budget)]
        events.append(self._staleness(float(budget), False, True))
        events += [
            self._staleness(budget + 1.0 + i, True, True) for i in range(budget)
        ]
        assert check_fallback_reengagement(events, fresh_after_intervals=2) == []

    def test_two_stuck_stretches_are_two_violations(self):
        budget = 2 + REENGAGE_SLACK
        stretch = [self._staleness(0.0, True, True)] * (budget + 1)
        events = (
            stretch
            + [self._staleness(10.0, False, True)]
            + stretch
        )
        violations = check_fallback_reengagement(events, fresh_after_intervals=2)
        assert len(violations) == 2


class TestReplicaAccounting:
    def test_lifecycle_ledger_matches_observations(self):
        events = [
            _ev(0.0, "replica_init", component="db", ready=3),
            _ev(1.0, "replica_observed", component="db", ready=3, pending=0),
            _ev(2.0, "provision_matured", component="db", count=2, ready=5),
            _ev(3.0, "replica_observed", component="db", ready=5, pending=0),
            _ev(4.0, "nodes_crashed", component="db", count=1, ready=4),
            _ev(5.0, "replica_observed", component="db", ready=4, pending=0),
            _ev(6.0, "drain_started", component="db", count=1, ready=3),
            _ev(7.0, "replica_observed", component="db", ready=3, pending=0),
        ]
        assert check_replica_accounting(events) == []

    def test_silent_count_change_is_violation(self):
        events = [
            _ev(0.0, "replica_init", component="db", ready=3),
            _ev(1.0, "replica_observed", component="db", ready=4, pending=1),
        ]
        violations = check_replica_accounting(events)
        assert len(violations) == 1
        assert violations[0].invariant == "replica-accounting"
        assert "without a provision/crash/drain" in violations[0].detail

    def test_observation_before_init_is_violation(self):
        events = [_ev(1.0, "replica_observed", component="db", ready=2, pending=0)]
        violations = check_replica_accounting(events)
        assert len(violations) == 1
        assert "before replica_init" in violations[0].detail

    def test_ledger_resyncs_after_a_violation(self):
        """One glitch must not cascade into a violation per observation."""
        events = [
            _ev(0.0, "replica_init", component="db", ready=3),
            _ev(1.0, "replica_observed", component="db", ready=4, pending=0),
            _ev(2.0, "replica_observed", component="db", ready=4, pending=0),
        ]
        assert len(check_replica_accounting(events)) == 1

    def test_components_are_independent(self):
        events = [
            _ev(0.0, "replica_init", component="a", ready=2),
            _ev(0.0, "replica_init", component="b", ready=5),
            _ev(1.0, "replica_observed", component="a", ready=2, pending=0),
            _ev(1.0, "replica_observed", component="b", ready=5, pending=0),
        ]
        assert check_replica_accounting(events) == []


class TestCheckAll:
    def test_runs_every_checker_over_one_stream(self):
        tap = SimTap()
        tap.now = 1.0
        tap.emit("dead_letter", uid="u1", root="r1")
        tap.emit("path_abandoned", root="r1")
        tap.now = 2.0
        tap.emit("path_completed", root="r1", members=("u1",))
        tap.emit("replica_observed", component="db", ready=2, pending=0)
        violations = check_all(tap)
        names = sorted(v.invariant for v in violations)
        assert names == [
            "dead-letter-exclusion",
            "no-resurrection",
            "replica-accounting",
        ]
        for violation in violations:
            assert violation.invariant in INVARIANT_NAMES
            as_dict = violation.to_dict()
            assert set(as_dict) == {"invariant", "minute", "detail"}

    def test_clean_tap_passes(self):
        tap = SimTap()
        tap.emit("replica_init", component="db", ready=2)
        tap.now = 1.0
        tap.emit("replica_observed", component="db", ready=2, pending=0)
        assert check_all(tap) == []
