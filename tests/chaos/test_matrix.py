"""Grid enumeration, cell identity, and subset selection.

The chaos matrix's whole value is determinism: the same grid index must
always decode to the same cell, the same cell must always mint the same
id, and the same ``--cells`` limit must always select the same —
axis-diverse — subset.  These tests pin all three, plus the digest gate
that keeps ``--replay`` honest across matrix-definition drift.
"""

import pytest

from repro.chaos.matrix import (
    CRASH_SCHEDULES,
    ENGINES,
    FAULT_PROFILES,
    FAULT_WINDOWS,
    PROFILER_MODES,
    STORE_CONFIGS,
    ChaosCell,
    ChaosMatrix,
    MatrixConfig,
)
from repro.errors import EvaluationError


class TestGridEnumeration:
    def test_total_is_axis_product(self):
        matrix = ChaosMatrix()
        expected = (
            len(FAULT_PROFILES)
            * len(FAULT_WINDOWS)
            * len(CRASH_SCHEDULES)
            * len(STORE_CONFIGS)
            * len(ENGINES)
            * len(PROFILER_MODES)
        )
        assert matrix.total_cells == expected == 288

    def test_decode_roundtrip_is_bijective(self):
        """Every grid index decodes to a distinct axis combination."""
        matrix = ChaosMatrix()
        seen = set()
        for index in range(matrix.total_cells):
            cell = matrix.cell_at(index)
            assert cell.grid_index == index
            combo = (
                cell.fault_profile,
                cell.start_minute,
                cell.end_minute,
                cell.crash_schedule,
                cell.num_shards,
                cell.write_batch_size,
                cell.engine,
                cell.profiler_mode,
            )
            assert combo not in seen
            seen.add(combo)
        assert len(seen) == matrix.total_cells

    def test_innermost_axis_is_profiler_mode(self):
        matrix = ChaosMatrix()
        assert matrix.cell_at(0).profiler_mode == PROFILER_MODES[0]
        assert matrix.cell_at(1).profiler_mode == PROFILER_MODES[1]
        assert matrix.cell_at(0).fault_profile == matrix.cell_at(1).fault_profile

    def test_out_of_range_index_rejected(self):
        matrix = ChaosMatrix()
        with pytest.raises(EvaluationError):
            matrix.cell_at(-1)
        with pytest.raises(EvaluationError):
            matrix.cell_at(matrix.total_cells)


class TestCellIdentity:
    def test_seed_derivation_is_stable(self):
        cell = ChaosMatrix().cell_at(140)
        assert cell.seed == cell.seed
        assert cell.seed_for(0) == cell.seed
        assert cell.seed_for(1) != cell.seed_for(0)
        # Distinct cells never share a seed within a sweep's repeats.
        other = ChaosMatrix().cell_at(141)
        assert other.seed != cell.seed

    def test_cell_id_is_deterministic_and_param_sensitive(self):
        a = ChaosMatrix().cell_at(7)
        b = ChaosMatrix().cell_at(7)
        assert a.cell_id == b.cell_id
        # A different run-level parameter mints a different digest.
        c = ChaosMatrix(MatrixConfig(base_seed=99)).cell_at(7)
        assert c.cell_id != a.cell_id
        assert c.cell_id.split("-")[0] == a.cell_id.split("-")[0]

    def test_from_dict_roundtrip(self):
        cell = ChaosMatrix().cell_at(42)
        again = ChaosCell.from_dict(cell.canonical())
        assert again == cell
        assert again.cell_id == cell.cell_id

    def test_from_dict_missing_key_rejected(self):
        data = ChaosMatrix().cell_at(0).canonical()
        del data["engine"]
        with pytest.raises(EvaluationError):
            ChaosCell.from_dict(data)

    def test_fault_plan_reflects_cell(self):
        matrix = ChaosMatrix()
        for index in range(matrix.total_cells):
            cell = matrix.cell_at(index)
            plan = cell.fault_plan()
            assert plan.seed == cell.seed
            assert plan.start_minute == cell.start_minute
            assert plan.end_minute == cell.end_minute
            if cell.crash_schedule == "none":
                assert plan.node_crashes == ()
            else:
                assert plan.node_crashes
            # Repeats reseed the plan but keep its shape.
            again = cell.fault_plan(repeat=3)
            assert again.seed == cell.seed_for(3) != plan.seed
            assert again.start_minute == plan.start_minute


class TestSelect:
    def test_full_grid_when_unlimited(self):
        matrix = ChaosMatrix()
        assert len(matrix.select()) == matrix.total_cells
        assert len(matrix.select(10_000)) == matrix.total_cells

    def test_limit_yields_distinct_cells(self):
        matrix = ChaosMatrix()
        for limit in (1, 2, 7, 12, 64, 287):
            cells = matrix.select(limit)
            assert len(cells) == limit
            assert len({c.grid_index for c in cells}) == limit

    def test_small_subset_covers_every_axis(self):
        """The stride must not exhaust the outermost axis first."""
        cells = ChaosMatrix().select(12)
        assert {c.engine for c in cells} == set(ENGINES)
        assert {c.profiler_mode for c in cells} == set(PROFILER_MODES)
        assert {c.crash_schedule for c in cells} == set(CRASH_SCHEDULES)
        assert {(c.num_shards, c.write_batch_size) for c in cells} == set(
            STORE_CONFIGS
        )
        assert {(c.start_minute, c.end_minute) for c in cells} == set(FAULT_WINDOWS)
        assert len({c.fault_profile for c in cells}) >= 4

    def test_selection_is_deterministic(self):
        a = [c.grid_index for c in ChaosMatrix().select(20)]
        b = [c.grid_index for c in ChaosMatrix().select(20)]
        assert a == b

    def test_bad_limit_rejected(self):
        with pytest.raises(EvaluationError):
            ChaosMatrix().select(0)


class TestCellById:
    def test_roundtrip(self):
        matrix = ChaosMatrix()
        cell = matrix.cell_at(244)
        assert matrix.cell_by_id(cell.cell_id) == cell

    def test_malformed_id_rejected(self):
        matrix = ChaosMatrix()
        for bad in ("nodigest", "xx-abc", "", "12"):
            with pytest.raises(EvaluationError):
                matrix.cell_by_id(bad)

    def test_digest_mismatch_rejected(self):
        matrix = ChaosMatrix()
        index = matrix.cell_at(5).cell_id.split("-")[0]
        with pytest.raises(EvaluationError, match="does not match this matrix"):
            matrix.cell_by_id(f"{index}-deadbeef")

    def test_id_from_other_matrix_config_rejected(self):
        """An id minted under different run parameters must not replay."""
        foreign = ChaosMatrix(MatrixConfig(duration_minutes=10)).cell_at(5)
        with pytest.raises(EvaluationError, match="minted with different"):
            ChaosMatrix().cell_by_id(foreign.cell_id)
