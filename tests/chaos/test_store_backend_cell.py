"""Chaos cells on the log backend: same ids, same digests, same ledgers.

``--store-backend`` is a sweep-level override, not a matrix axis: cell
ids are digest-derived from the grid parameters and must stay stable, so
a log-backend sweep must reproduce the memory sweep bit-for-bit — the
telemetry digest (which covers the dead-letter ledger counters the
chaos invariants audit) is the witness.  The log-backend cell also
leaves a replayable journal behind: reopening it recovers the exact
surviving store state.
"""

import os

from repro.chaos.matrix import ChaosMatrix, MatrixConfig
from repro.chaos.runner import run_cell
from repro.evalx.experiment import _manager_slug
from repro.graphstore.backend import make_backend, shard_backends
from repro.graphstore.sharded import ShardedGraphStore
from repro.graphstore.store import GraphStore

MATRIX = ChaosMatrix(MatrixConfig(duration_minutes=20))
#: A deterministic slice of the selection: one tick cell, one event cell.
CELLS = [c for c in MATRIX.select(25) if c.profiler_mode == "exact"]
TICK_CELL = next(c for c in CELLS if c.engine == "tick")
EVENT_CELL = next(c for c in CELLS if c.engine == "event")


def test_log_backend_cell_matches_memory_digest(tmp_path):
    for cell in (TICK_CELL, EVENT_CELL):
        memory = run_cell(cell, repeat=0)
        logged = run_cell(
            cell, repeat=0, store_backend="log", store_dir=str(tmp_path)
        )
        assert logged.telemetry_digest == memory.telemetry_digest, cell.cell_id
        assert logged.violations == memory.violations
        assert logged.headline == memory.headline
        assert os.path.isdir(
            tmp_path / f"{cell.cell_id}-r0" / _manager_slug(cell.manager)
        )


def test_log_backend_cell_journal_reopens_after_the_run(tmp_path):
    cell = TICK_CELL
    run_cell(cell, repeat=1, store_backend="log", store_dir=str(tmp_path))
    directory = str(
        tmp_path / f"{cell.cell_id}-r1" / _manager_slug(cell.manager)
    )
    if cell.num_shards > 1:
        store = ShardedGraphStore(
            num_shards=cell.num_shards,
            backends=shard_backends(
                "log", cell.num_shards, directory, create=False
            ),
        )
    else:
        store = GraphStore(backend=make_backend("log", directory, create=False))
    replayed = store.recover()
    assert replayed > 0
    store.close()
