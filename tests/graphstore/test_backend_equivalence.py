"""Backend ≡ memory: the cross-backend bit-identity contract.

A graph-store backend changes *where* state lives (process RAM, an
append-only log, a store-server process) but never *what* the store
computes.  These seeded property tests pin that across the three
backends: identical observables (signatures, members, evictions,
survivors, notifications), identical fault-ledger counters under a
seeded fault plan, and — the strongest form — bit-identical sha256
telemetry digests over every non-volatile metric, at multiple
shard/batch configurations and under both simulation engines.

The ordering-leak audit behind the digest contract: ``all_uids`` walks
insertion-ordered partition dicts, ``graph_members`` returns the
accumulator's arrival-ordered member list, ``repair_dangling_edges``
sweeps ``sorted()`` ghosts — all deterministic — and the one true leak
(``frozenset`` cause-uid iteration order varies with the interpreter
hash seed) is sealed at the log boundary by sorting cause uids into the
canonical on-disk encoding (``encode_message``).
"""

import random

import pytest

from repro.chaos.runner import telemetry_digest
from repro.core.causal_graph import DirectCausalityTracker
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.graphstore.backend import make_backend, shard_backends
from repro.graphstore.pipeline import BatchedWritePipeline
from repro.graphstore.sharded import ShardedGraphStore
from repro.graphstore.shared import SharedGraphStoreClient, SharedStoreServer
from repro.graphstore.store import GraphStore
from repro.profiling.profiler import CausalPathProfiler
from repro.telemetry import MetricsRegistry

from tests.graphstore.test_sharded_equivalence import _bridge_free_trace, _ingest, _observe

NUM_SHARDS = 4


@pytest.fixture(scope="module")
def server():
    srv = SharedStoreServer()
    srv.start()
    yield srv
    srv.shutdown()


def _build_store(kind, registry, tmp_path, server, namespace, shards=1,
                 injector=None):
    if kind == "shared":
        return SharedGraphStoreClient(
            server.address, server.authkey, namespace=namespace,
            num_shards=shards, registry=registry, fault_injector=injector,
        )
    if shards > 1:
        backends = (
            shard_backends("log", shards, str(tmp_path / namespace), registry=registry)
            if kind == "log" else None
        )
        return ShardedGraphStore(
            num_shards=shards, registry=registry, fault_injector=injector,
            backends=backends,
        )
    backend = (
        make_backend("log", str(tmp_path / namespace), registry=registry)
        if kind == "log" else None
    )
    return GraphStore(registry=registry, fault_injector=injector, backend=backend)


def _run_store(kind, stored, roots, tmp_path, server, namespace, shards=1,
               batch_size=None):
    registry = MetricsRegistry()
    store = _build_store(kind, registry, tmp_path, server, namespace, shards=shards)
    outcome = _observe(store, stored, roots, batch_size=batch_size)
    store.close()
    return outcome, telemetry_digest(registry.snapshot())


@pytest.mark.parametrize("seed", range(25))
def test_backends_bit_identical_on_store_observables(seed, tmp_path, server):
    """25 seeds x (shards, batch) cell: every backend ≡ memory, digest included."""
    rng = random.Random(seed)
    stored, roots = _bridge_free_trace(rng)
    shards = rng.choice((1, NUM_SHARDS))
    batch = rng.choice((None, 2, 32))
    reference, ref_digest = _run_store(
        "memory", stored, roots, tmp_path, server, f"mem-{seed}",
        shards=shards, batch_size=batch,
    )
    for kind in ("log", "shared"):
        outcome, digest = _run_store(
            kind, stored, roots, tmp_path, server, f"{kind}-{seed}",
            shards=shards, batch_size=batch,
        )
        assert outcome == reference, (kind, shards, batch)
        assert digest == ref_digest, (kind, shards, batch)


def _run_tracker(kind, stored, plan, tmp_path, server, namespace, shards,
                 batch_size):
    registry = MetricsRegistry()
    injector = FaultInjector(plan, registry=registry)
    store_injector = injector if batch_size == 1 else None
    store = _build_store(
        kind, registry, tmp_path, server, namespace, shards=shards,
        injector=store_injector,
    )
    profiler = CausalPathProfiler({}, registry=registry)
    tracker = DirectCausalityTracker(
        profiler, store=store, registry=registry, fault_injector=injector,
        write_batch_size=batch_size,
    )
    tracker.observe_all(stored)
    outcome = {
        "completed": tracker.completed_paths,
        "node_count": store.node_count(),
        "dead_letter_uids": [m.uid for m in tracker.dead_letters],
        "ledger": {
            name: registry.counter(name).value
            for name in (
                "faults.store_write_failures",
                "tracker.store_write_retries",
                "tracker.dead_letters",
                "tracker.paths_completed",
            )
        },
    }
    store.close()
    return outcome, telemetry_digest(registry.snapshot())


@pytest.mark.parametrize("seed", range(0, 25, 5))
def test_fault_plan_ledgers_identical_across_backends(seed, tmp_path, server):
    """The seeded write-fault stream must not notice the backend."""
    rng = random.Random(seed + 7000)
    stored, _roots = _bridge_free_trace(rng, num_roots=10)
    plan = FaultPlan(seed=seed, store_write_failure_rate=0.3)
    shards, batch = rng.choice(((1, 1), (NUM_SHARDS, 1), (NUM_SHARDS, 16)))
    reference, ref_digest = _run_tracker(
        "memory", stored, plan, tmp_path, server, f"fmem-{seed}", shards, batch
    )
    assert reference["ledger"]["faults.store_write_failures"] > 0
    for kind in ("log", "shared"):
        outcome, digest = _run_tracker(
            kind, stored, plan, tmp_path, server, f"f{kind}-{seed}", shards, batch
        )
        assert outcome == reference, (kind, shards, batch)
        assert digest == ref_digest, (kind, shards, batch)


@pytest.mark.parametrize("seed", range(0, 25, 5))
def test_log_restart_then_maintenance_stays_exact(seed, tmp_path):
    """run → close → reopen → recover: maintenance behaves as if never closed.

    The memory store runs the identical stream without a restart; after
    the log store's recovery, eviction, abandonment, and dangling-edge
    repair must return the same counts and leave the same survivors.
    """
    rng = random.Random(seed + 31)
    stored, roots = _bridge_free_trace(rng)
    batch = rng.choice((None, 8))

    memory = GraphStore(registry=MetricsRegistry())
    _ingest(memory, stored, batch_size=batch)

    registry = MetricsRegistry()
    directory = str(tmp_path / "restart")
    store = GraphStore(
        registry=registry, backend=make_backend("log", directory, registry=registry)
    )
    _ingest(store, stored, batch_size=batch)
    store.close()

    reopened = GraphStore(
        registry=MetricsRegistry(),
        backend=make_backend("log", directory, create=False),
    )
    replayed = reopened.recover()
    assert replayed > 0
    assert reopened.node_count() == memory.node_count()

    half = [r.uid for r in roots[: len(roots) // 2]]
    rest = [r.uid for r in roots[len(roots) // 2:]]
    assert [reopened.evict_graph(r) for r in half] == [memory.evict_graph(r) for r in half]
    assert [reopened.abandon_root(r) for r in rest] == [memory.abandon_root(r) for r in rest]
    assert reopened.repair_dangling_edges() == memory.repair_dangling_edges()
    assert sorted(reopened.all_uids()) == sorted(memory.all_uids())

    # The post-restart maintenance was journaled too: a second restart
    # converges on the same survivors.
    reopened.close()
    second = GraphStore(backend=make_backend("log", directory, create=False))
    second.recover()
    assert sorted(second.all_uids()) == sorted(memory.all_uids())


# -- full-simulator digests ----------------------------------------------------


def _sim_digest(backend, tmp_path, name, shards=1, batch=1, engine="tick",
                fault_plan=None):
    from repro.apps.catalog import load_scenario
    from repro.evalx.experiment import ExperimentConfig, build_simulator

    config = ExperimentConfig(
        duration_minutes=12, seed=7, num_shards=shards, write_batch_size=batch,
        engine=engine, store_backend=backend,
        store_dir=str(tmp_path / name) if backend == "log" else None,
    )
    registry = MetricsRegistry()
    simulator = build_simulator(
        load_scenario("hedwig"), "DCA-10%", config, registry=registry,
        fault_plan=fault_plan,
        path_timeout_minutes=5.0 if fault_plan is not None else None,
    )
    simulator.run()
    return telemetry_digest(registry.snapshot())


@pytest.mark.parametrize(
    "shards,batch,engine",
    [(1, 1, "tick"), (NUM_SHARDS, 8, "tick"), (1, 1, "event")],
)
def test_full_simulation_digest_parity(shards, batch, engine, tmp_path):
    reference = _sim_digest("memory", tmp_path, "m", shards, batch, engine)
    for backend in ("log", "shared"):
        assert _sim_digest(
            backend, tmp_path, backend, shards, batch, engine
        ) == reference, backend


def test_full_simulation_digest_parity_under_faults(tmp_path):
    """A chaos-style cell (fault plan + path timeout) keeps the contract."""
    plan = FaultPlan(
        seed=3, message_drop_rate=0.02, store_write_failure_rate=0.05,
    )
    reference = _sim_digest("memory", tmp_path, "fm", fault_plan=plan)
    for backend in ("log", "shared"):
        assert _sim_digest(
            backend, tmp_path, "f" + backend, fault_plan=plan
        ) == reference, backend
