"""Sharded store ≡ single store on bridge-free streams (property tests).

The routing rule (root uid → shard) keeps each causal graph shard-local,
so for bridge-free message streams — no request borrowing a cause from
another request's graph, which is what per-request tracing emits —
a :class:`ShardedGraphStore` must be *observationally identical* to a
single :class:`GraphStore` fed the same shuffled stream: identical
completed signatures, identical path-complete notification sequences,
identical eviction counts, identical survivors.  These seeded property
tests pin that, unbatched and through the batched write pipeline, in
fault-free runs and under a seeded fault plan.

The one documented divergence — cross-root bridges degrade to sampling
gaps under sharding — is pinned by its own test at the bottom.
"""

import random

import pytest

from repro.core.causal_graph import DirectCausalityTracker
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.graphstore.pipeline import BatchedWritePipeline
from repro.graphstore.sharded import ShardedGraphStore
from repro.graphstore.store import GraphStore
from repro.lang.ir import CLIENT, EXTERNAL
from repro.lang.message import Message, MessageUid
from repro.profiling.profiler import CausalPathProfiler
from repro.telemetry import MetricsRegistry

NUM_SHARDS = 4


def _bridge_free_trace(rng, num_roots=8, max_nodes_per_root=14):
    """Generate (stored_messages, roots): shuffled bridge-free DAG streams.

    Mirrors the incremental-signature generator — fan-in, sampling gaps
    (15% of non-root messages dropped before storage), one root in six
    dropped entirely, shuffled arrival — but never borrows causes across
    requests, which is the precondition for shard-local equivalence.
    """
    all_messages = []
    per_root = []
    seq = 1
    for r in range(num_roots):
        root = Message(MessageUid("h", 11, seq), f"req{r % 3}", EXTERNAL, f"C{r}")
        seq += 1
        own = [root]
        for i in range(rng.randrange(2, max_nodes_per_root)):
            causes = frozenset(
                m.uid
                for m in rng.sample(own, k=min(len(own), rng.randrange(1, 4)))
            )
            dest = CLIENT if rng.random() < 0.2 else f"C{rng.randrange(num_roots)}"
            msg = Message(
                MessageUid("h", 11, seq),
                f"m{i % 5}",
                f"C{rng.randrange(num_roots)}",
                dest,
                cause_uids=causes,
                root_uid=root.uid,
            )
            seq += 1
            own.append(msg)
        per_root.append(own)
        all_messages.extend(own)
    roots = [own[0] for own in per_root]
    dropped_roots = {roots[i].uid for i in range(0, num_roots, 6)}
    stored = []
    for msg in all_messages:
        if msg.uid in dropped_roots:
            continue
        if msg.root_uid is not None and rng.random() < 0.15:
            continue  # sampling gap: uid survives only as a cause reference
        stored.append(msg)
    rng.shuffle(stored)
    return stored, roots


def _ingest(store, messages, batch_size=None):
    """Feed ``messages`` directly or through a batched pipeline."""
    if batch_size is None:
        for msg in messages:
            store.add_message(msg)
    else:
        pipeline = BatchedWritePipeline(store, batch_size=batch_size,
                                        registry=store.telemetry)
        for msg in messages:
            pipeline.submit(msg)
        pipeline.flush()


def _observe(store, messages, roots, batch_size=None):
    """Ingest and collect every externally observable outcome."""
    notifications = []
    store.subscribe_path_complete(notifications.append)
    _ingest(store, messages, batch_size=batch_size)
    signatures = {root.uid: store.completed_signature(root.uid) for root in roots}
    members = {root.uid: sorted(store.graph_members(root.uid)) for root in roots}
    node_count = store.node_count()
    evictions = {root.uid: store.evict_graph(root.uid) for root in roots}
    survivors = sorted(store.all_uids())
    return {
        "notifications": notifications,
        "signatures": signatures,
        "members": members,
        "node_count": node_count,
        "evictions": evictions,
        "survivors": survivors,
    }


@pytest.mark.parametrize("seed", range(25))
def test_sharded_store_matches_single_store(seed):
    rng = random.Random(seed)
    stored, roots = _bridge_free_trace(rng)
    single = _observe(GraphStore(registry=MetricsRegistry()), stored, roots)
    sharded = _observe(
        ShardedGraphStore(num_shards=NUM_SHARDS, registry=MetricsRegistry()),
        stored,
        roots,
    )
    assert sharded == single


@pytest.mark.parametrize("seed", range(25))
def test_batched_sharded_store_matches_single_store(seed):
    """The write pipeline changes *when* writes land, never what they say.

    Batching preserves per-root arrival order (one root → one shard →
    one FIFO buffer) but interleaves *across* roots by flush, so the
    path-complete notification sequence is compared as a multiset; every
    other observable (signatures, members, evictions, survivors) must be
    identical outright.
    """
    rng = random.Random(seed + 500)
    stored, roots = _bridge_free_trace(rng)
    single = _observe(GraphStore(registry=MetricsRegistry()), stored, roots)
    batched = _observe(
        ShardedGraphStore(num_shards=NUM_SHARDS, registry=MetricsRegistry()),
        stored,
        roots,
        batch_size=rng.choice((2, 7, 32, 1000)),
    )
    assert sorted(batched.pop("notifications")) == sorted(single.pop("notifications"))
    assert batched == single


def _run_tracker(stored, num_shards, batch_size, plan):
    """Full tracker over one stream; returns observable outcome + telemetry."""
    registry = MetricsRegistry()
    injector = FaultInjector(plan, registry=registry)
    store_injector = injector if batch_size == 1 else None
    if num_shards > 1:
        store = ShardedGraphStore(
            num_shards=num_shards, registry=registry, fault_injector=store_injector
        )
    else:
        store = GraphStore(registry=registry, fault_injector=store_injector)
    profiler = CausalPathProfiler({}, registry=registry)
    tracker = DirectCausalityTracker(
        profiler,
        store=store,
        registry=registry,
        fault_injector=injector,
        write_batch_size=batch_size,
    )
    tracker.observe_all(stored)
    counters = {
        name: registry.counter(name).value
        for name in (
            "faults.store_write_failures",
            "tracker.store_write_retries",
            "tracker.dead_letters",
            "tracker.paths_completed",
        )
    }
    return {
        "completed": tracker.completed_paths,
        "counters": counters,
        "node_count": store.node_count(),
        "dead_letter_uids": [m.uid for m in tracker.dead_letters],
    }


@pytest.mark.parametrize("seed", range(25))
def test_fault_plan_outcomes_identical_across_configurations(seed):
    """One seeded fault plan → one outcome, at any shard/batch config.

    The write-fault channel is rolled in arrival order with the retry
    loop's roll-per-attempt pattern wherever the roll lives (store,
    facade, or pipeline), so retries, dead letters and completions are
    bit-identical across configurations.
    """
    rng = random.Random(seed + 9000)
    stored, _roots = _bridge_free_trace(rng, num_roots=10)
    plan = FaultPlan(seed=seed, store_write_failure_rate=0.3)
    reference = _run_tracker(stored, num_shards=1, batch_size=1, plan=plan)
    assert reference["counters"]["faults.store_write_failures"] > 0
    for num_shards, batch_size in ((NUM_SHARDS, 1), (1, 16), (NUM_SHARDS, 16)):
        outcome = _run_tracker(stored, num_shards, batch_size, plan)
        assert outcome == reference, (num_shards, batch_size)


def _roots_on_distinct_shards(store):
    """Two root messages whose uids route to different shards."""
    first = Message(MessageUid("h", 12, 1), "reqA", EXTERNAL, "A0")
    seq = 2
    while True:
        candidate = Message(MessageUid("h", 12, seq), "reqB", EXTERNAL, "B0")
        if store.shard_index_of(candidate.uid) != store.shard_index_of(first.uid):
            return first, candidate
        seq += 1


def test_cross_root_bridge_degrades_to_sampling_gap():
    """The documented divergence: signatures are root-local under sharding.

    A single store propagates reachability across a shared-cause bridge,
    so the bridged message joins the *foreign* root's signature too; the
    sharded store never sees the foreign cause in the bridge's home
    shard, so the bridge degrades to a sampling gap and each signature
    stays root-local.
    """
    sharded = ShardedGraphStore(num_shards=NUM_SHARDS, registry=MetricsRegistry())
    root_a, root_b = _roots_on_distinct_shards(sharded)
    mid_a = Message(
        MessageUid("h", 12, 100), "mA", "A0", "A1",
        cause_uids=frozenset({root_a.uid}), root_uid=root_a.uid,
    )
    # The bridge: a message of request B caused by request A's state.
    bridge = Message(
        MessageUid("h", 12, 101), "bridge", "A1", CLIENT,
        cause_uids=frozenset({root_b.uid, mid_a.uid}), root_uid=root_b.uid,
    )
    stream = [root_a, mid_a, root_b, bridge]

    single_store = GraphStore(registry=MetricsRegistry())
    for msg in stream:
        single_store.add_message(msg)
    for msg in stream:
        sharded.add_message(msg)

    bridge_edge = ("A1", "bridge", CLIENT)
    _, single_sig_a = single_store.completed_signature(root_a.uid)
    assert bridge_edge in single_sig_a  # reach crossed the bridge
    _, sharded_sig_a = sharded.completed_signature(root_a.uid)
    assert bridge_edge not in sharded_sig_a  # root-local signature
    # The bridge's own root sees it identically in both stores.
    _, single_sig_b = single_store.completed_signature(root_b.uid)
    _, sharded_sig_b = sharded.completed_signature(root_b.uid)
    assert bridge_edge in sharded_sig_b
    assert sharded_sig_b == single_sig_b
