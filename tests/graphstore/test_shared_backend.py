"""Process-shared store backend: one store server, many workers.

Pins the satellite contract of the shared backend: a
``run_all_managers(..., workers=N)`` sweep on the shared backend — every
manager run a separate *process* talking to one store server over its
Unix socket — produces exactly the serial memory-backend outcome: equal
:class:`~repro.sim.metrics.SimulationResult` objects per manager and a
bit-identical merged telemetry digest, with no snapshot merging beyond
what the serial path already does.
"""

import pytest

from repro.apps.catalog import load_scenario
from repro.chaos.runner import telemetry_digest
from repro.evalx.experiment import ExperimentConfig, build_simulator, run_all_managers
from repro.graphstore.shared import SharedGraphStoreClient, SharedStoreServer
from repro.lang.ir import CLIENT, EXTERNAL
from repro.lang.message import Message, MessageUid
from repro.telemetry import MetricsRegistry

MANAGERS = ("DCA-5%", "DCA-10%", "DCA-20%")
DURATION = 10


def _config(backend):
    return ExperimentConfig(
        duration_minutes=DURATION, seed=7, store_backend=backend
    )


def _serial_memory_reference(scenario):
    registry = MetricsRegistry()
    results = {}
    for name in MANAGERS:
        results[name] = build_simulator(
            scenario, name, _config("memory"), registry=registry
        ).run()
    return results, telemetry_digest(registry.snapshot())


def test_worker_pool_on_shared_store_matches_serial_memory():
    scenario = load_scenario("hedwig")
    reference, ref_digest = _serial_memory_reference(scenario)

    registry = MetricsRegistry()
    results = run_all_managers(
        scenario, managers=MANAGERS, config=_config("shared"),
        workers=4, registry=registry,
    )
    assert set(results) == set(MANAGERS)
    for name in MANAGERS:
        assert results[name] == reference[name], name
    assert telemetry_digest(registry.snapshot()) == ref_digest


def test_serial_shared_sweep_matches_serial_memory():
    """Same contract without the pool: one private server per sweep."""
    scenario = load_scenario("hedwig")
    reference, _ = _serial_memory_reference(scenario)
    results = run_all_managers(
        scenario, managers=MANAGERS[:2], config=_config("shared"), workers=1
    )
    for name in MANAGERS[:2]:
        assert results[name] == reference[name], name


class TestClientSurface:
    @pytest.fixture(scope="class")
    def server(self):
        srv = SharedStoreServer()
        srv.start()
        yield srv
        srv.shutdown()

    def _client(self, server, namespace, **kwargs):
        return SharedGraphStoreClient(
            server.address, server.authkey, namespace=namespace, **kwargs
        )

    def test_namespaces_are_isolated(self, server):
        a = self._client(server, "iso-a")
        b = self._client(server, "iso-b")
        root = Message(MessageUid("h", 1, 1), "req", EXTERNAL, "A")
        a.add_message(root)
        assert a.node_count() == 1
        assert b.node_count() == 0
        assert not b.contains(root.uid)

    def test_completion_callbacks_fire_client_side(self, server):
        client = self._client(server, "notify")
        fired = []
        client.subscribe_path_complete(fired.append)
        root = Message(MessageUid("h", 2, 1), "req", EXTERNAL, "A")
        done = Message(
            MessageUid("h", 2, 2), "resp", "A", CLIENT,
            cause_uids=frozenset({root.uid}), root_uid=root.uid,
        )
        client.add_messages([root, done])
        assert fired == [root.uid]

    def test_backend_kind_and_close_idempotence(self, server):
        client = self._client(server, "kind")
        assert client.backend_kind == "shared"
        client.close()
        client.close()

    def test_telemetry_merges_on_close(self, server):
        registry = MetricsRegistry()
        client = self._client(server, "telemetry", registry=registry)
        client.add_message(Message(MessageUid("h", 3, 1), "req", EXTERNAL, "A"))
        assert registry.counter("graphstore.nodes_added").value == 0
        client.close()
        assert registry.counter("graphstore.nodes_added").value == 1
