"""Unit tests for BFS causal-graph extraction."""

import pytest

from repro.errors import GraphStoreError
from repro.graphstore.query import ancestors_of, causal_graph_bfs, reachable_set
from repro.graphstore.store import GraphStore
from repro.lang.ir import CLIENT, EXTERNAL
from repro.lang.message import Message, MessageUid


def _uid(seq):
    return MessageUid("h", 1, seq)


def _diamond_store():
    """root → {left, right} → join → response."""
    store = GraphStore()
    root = Message(_uid(1), "req", EXTERNAL, "A")
    left = Message(_uid(2), "l", "A", "B", cause_uids=frozenset({root.uid}), root_uid=root.uid)
    right = Message(_uid(3), "r", "A", "C", cause_uids=frozenset({root.uid}), root_uid=root.uid)
    join = Message(
        _uid(4), "j", "B", "D", cause_uids=frozenset({left.uid, right.uid}), root_uid=root.uid
    )
    response = Message(
        _uid(5), "done", "D", CLIENT, cause_uids=frozenset({join.uid}), root_uid=root.uid
    )
    for m in (root, left, right, join, response):
        store.add_message(m)
    return store, root, (left, right, join, response)


class TestCausalGraphBfs:
    def test_visits_whole_graph(self):
        store, root, others = _diamond_store()
        result = causal_graph_bfs(store, root.uid)
        assert len(result.nodes) == 5
        assert result.complete

    def test_edges_are_canonical(self):
        store, root, _ = _diamond_store()
        result = causal_graph_bfs(store, root.uid)
        assert result.edges == tuple(sorted(set(result.edges)))
        assert (EXTERNAL, "req", "A") in result.edges
        assert ("D", "done", CLIENT) in result.edges

    def test_incomplete_without_response(self):
        store = GraphStore()
        root = Message(_uid(1), "req", EXTERNAL, "A")
        store.add_message(root)
        result = causal_graph_bfs(store, root.uid)
        assert not result.complete

    def test_missing_root_raises(self):
        store = GraphStore()
        with pytest.raises(GraphStoreError):
            causal_graph_bfs(store, _uid(404))

    def test_signature_matches_edges(self):
        store, root, _ = _diamond_store()
        result = causal_graph_bfs(store, root.uid)
        assert result.signature == result.edges

    def test_dangling_cause_skipped(self):
        """An edge whose effect node was never stored must not break BFS."""
        store = GraphStore()
        root = Message(_uid(1), "req", EXTERNAL, "A")
        store.add_message(root)
        store.add_edge(root.uid, _uid(77))  # effect node never stored
        result = causal_graph_bfs(store, root.uid)
        assert len(result.nodes) == 1


class TestReachability:
    def test_reachable_set(self):
        store, root, others = _diamond_store()
        reach = reachable_set(store, root.uid)
        assert len(reach) == 5
        assert root.uid in reach

    def test_ancestors(self):
        store, root, others = _diamond_store()
        response = others[-1]
        anc = ancestors_of(store, response.uid)
        assert root.uid in anc
        assert response.uid not in anc
        assert len(anc) == 4


class TestDotExport:
    def test_dot_contains_nodes_and_edges(self):
        from repro.graphstore.query import to_dot

        store, root, others = _diamond_store()
        dot = to_dot(store, root.uid, title="demo")
        assert dot.startswith("digraph causal {")
        assert dot.rstrip().endswith("}")
        assert 'label="demo"' in dot
        assert dot.count("->") == 5  # root→l, root→r, l→join, r→join, join→resp
        assert "req" in dot and "done" in dot

    def test_dot_marks_response_bold(self):
        from repro.graphstore.query import to_dot

        store, root, others = _diamond_store()
        assert "style=bold" in to_dot(store, root.uid)

    def test_dot_label_uses_newline_escape(self):
        """Node labels must embed the two-character ``\\n`` DOT escape, not
        a raw newline (which would split the label across source lines and
        malform the output)."""
        from repro.graphstore.query import to_dot

        store, root, others = _diamond_store()
        dot = to_dot(store, root.uid)
        node_lines = [
            line for line in dot.splitlines() if line.strip().startswith("n") and "label=" in line
        ]
        assert len(node_lines) == 5
        for line in node_lines:
            assert "\\n" in line
            # A raw newline inside the f-string would tear the statement
            # across source lines; each must be complete.
            assert line.rstrip().endswith("];")

    def test_dot_missing_root_raises(self):
        from repro.errors import GraphStoreError
        from repro.graphstore.query import to_dot

        with pytest.raises(GraphStoreError):
            to_dot(GraphStore(), _uid(404))
