"""Equivalence of incremental per-root signatures with BFS extraction.

The store accumulates each root's canonical edge-triple set and member
list online (see :mod:`repro.graphstore.store`); the tracker consumes
them instead of running :func:`causal_graph_bfs` per completion.  These
property-style tests generate randomized message graphs — fan-out /
fan-in, sampling gaps (causes that never materialise as nodes), shared
causes bridging two requests' graphs, and shuffled (out-of-order)
arrival — and assert the incremental state matches the BFS oracle
exactly:

* ``completed_signature(root)`` equals ``(root.msg_type, bfs.edges)``
  after canonical sorting, for every stored root;
* roots that were never stored yield ``None`` where BFS raises;
* ``evict_graph(root)`` removes exactly the nodes a forward
  reachability sweep from the root would remove, and nothing else.
"""

import random

import pytest

from repro.errors import GraphStoreError
from repro.graphstore.query import causal_graph_bfs, reachable_set
from repro.graphstore.store import GraphStore
from repro.lang.ir import CLIENT, EXTERNAL
from repro.lang.message import Message, MessageUid


def _random_trace(rng, num_roots=6, max_nodes_per_root=14):
    """Generate (all_messages, stored_messages, roots).

    Each root grows a random DAG: every new message picks 1–3 causes from
    earlier messages of the same request (fan-in), occasionally borrowing
    a cause from a *different* request (shared cause → bridged graphs).
    Roughly 15% of non-root messages are dropped before storage (sampling
    gaps: their uids still appear as causes), and one root in six is
    dropped entirely (completion with no stored root).  Arrival order is
    shuffled so causes regularly arrive after their effects.
    """
    all_messages = []
    per_root = []
    seq = 1
    for r in range(num_roots):
        root = Message(MessageUid("h", 9, seq), f"req{r % 3}", EXTERNAL, f"C{r}")
        seq += 1
        own = [root]
        for i in range(rng.randrange(2, max_nodes_per_root)):
            pool = list(own)
            if per_root and rng.random() < 0.2:
                pool.extend(rng.choice(per_root))  # shared cause across requests
            causes = frozenset(m.uid for m in rng.sample(pool, k=min(len(pool), rng.randrange(1, 4))))
            dest = CLIENT if rng.random() < 0.2 else f"C{rng.randrange(num_roots)}"
            msg = Message(
                MessageUid("h", 9, seq),
                f"m{i % 5}",
                f"C{rng.randrange(num_roots)}",
                dest,
                cause_uids=causes,
                root_uid=root.uid,
            )
            seq += 1
            own.append(msg)
        per_root.append(own)
        all_messages.extend(own)
    roots = [own[0] for own in per_root]
    dropped_roots = {roots[i].uid for i in range(0, num_roots, 6)}
    stored = []
    for msg in all_messages:
        if msg.uid in dropped_roots:
            continue
        if msg.root_uid is not None and rng.random() < 0.15:
            continue  # sampling gap: uid survives only as a cause reference
        stored.append(msg)
    rng.shuffle(stored)
    return all_messages, stored, roots


@pytest.mark.parametrize("seed", range(25))
def test_incremental_signature_matches_bfs_oracle(seed):
    rng = random.Random(seed)
    _, stored, roots = _random_trace(rng)
    store = GraphStore()
    for msg in stored:
        store.add_message(msg)
    stored_uids = {m.uid for m in stored}
    for root in roots:
        if root.uid not in stored_uids:
            assert store.completed_signature(root.uid) is None
            with pytest.raises(GraphStoreError):
                causal_graph_bfs(store, root.uid)
            continue
        completed = store.completed_signature(root.uid)
        assert completed is not None
        request_type, edges = completed
        oracle = causal_graph_bfs(store, root.uid)
        assert request_type == root.msg_type
        assert tuple(sorted(set(edges))) == oracle.edges
        # Member list covers exactly the BFS-visited node set.
        present_members = {
            uid for uid in store.graph_members(root.uid) if store.get_node(uid) is not None
        }
        assert present_members == {node.uid for node in oracle.nodes}


@pytest.mark.parametrize("seed", range(25))
def test_member_eviction_matches_reachability_sweep(seed):
    rng = random.Random(seed + 1000)
    _, stored, roots = _random_trace(rng)
    store = GraphStore()
    for msg in stored:
        store.add_message(msg)
    stored_uids = {m.uid for m in stored}
    for root in roots:
        present_before = set(store.all_uids())
        expected = {
            uid for uid in reachable_set(store, root.uid) if uid in present_before
        }
        removed = store.evict_graph(root.uid)
        present_after = set(store.all_uids())
        assert removed == len(expected)
        assert present_before - present_after == expected
        if root.uid in stored_uids:
            assert store.completed_signature(root.uid) is None
    # Whatever survives every eviction is exactly what no root can reach:
    # nodes downstream of a sampling gap (disconnected tails).
    for uid in store.all_uids():
        for root in roots:
            assert uid not in reachable_set(store, root.uid) or uid == root.uid


def test_out_of_order_single_chain_signature():
    """Causes arriving strictly after their effects still converge."""
    store = GraphStore()
    root = Message(MessageUid("h", 9, 1), "req", EXTERNAL, "A")
    mid = Message(
        MessageUid("h", 9, 2), "m", "A", "B", cause_uids=frozenset({root.uid}), root_uid=root.uid
    )
    resp = Message(
        MessageUid("h", 9, 3), "done", "B", CLIENT, cause_uids=frozenset({mid.uid}), root_uid=root.uid
    )
    for msg in (resp, mid, root):  # fully reversed arrival
        store.add_message(msg)
    completed = store.completed_signature(root.uid)
    assert completed is not None
    request_type, edges = completed
    assert request_type == "req"
    assert sorted(set(edges)) == sorted(causal_graph_bfs(store, root.uid).edges)
    assert store.evict_graph(root.uid) == 3
    assert store.node_count() == 0


def test_readd_does_not_duplicate_members():
    """Re-observing a stored message must not grow the member list."""
    store = GraphStore()
    root = Message(MessageUid("h", 9, 1), "req", EXTERNAL, "A")
    child = Message(
        MessageUid("h", 9, 2), "m", "A", CLIENT, cause_uids=frozenset({root.uid}), root_uid=root.uid
    )
    store.add_message(root)
    store.add_message(child)
    store.add_message(child)
    store.add_message(root)
    assert sorted(store.graph_members(root.uid)) == sorted([root.uid, child.uid])
    assert store.evict_graph(root.uid) == 2
