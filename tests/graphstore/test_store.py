"""Unit tests for the partitioned causal-graph store."""

import pytest

from repro.errors import GraphStoreError
from repro.graphstore.partition import HashPartitioner
from repro.graphstore.store import GraphStore
from repro.lang.ir import CLIENT, EXTERNAL
from repro.lang.message import Message, MessageUid


def _uid(seq, proc=1, host="h"):
    return MessageUid(host, proc, seq)


def _msg(seq, msg_type="m", src="A", dest="B", causes=(), root=None):
    return Message(
        uid=_uid(seq),
        msg_type=msg_type,
        src=src,
        dest=dest,
        cause_uids=frozenset(causes),
        root_uid=root,
    )


class TestPartitioner:
    def test_deterministic(self):
        p = HashPartitioner(8)
        uid = _uid(42)
        assert p.partition_of(uid) == p.partition_of(MessageUid("h", 1, 42))

    def test_in_range(self):
        p = HashPartitioner(5)
        for seq in range(100):
            assert 0 <= p.partition_of(_uid(seq)) < 5

    def test_spread(self):
        p = HashPartitioner(4)
        parts = {p.partition_of(_uid(seq)) for seq in range(200)}
        assert parts == {0, 1, 2, 3}

    def test_invalid_count(self):
        with pytest.raises(GraphStoreError):
            HashPartitioner(0)


class TestGraphStore:
    def test_add_and_get(self):
        store = GraphStore()
        msg = _msg(1)
        node = store.add_message(msg)
        assert store.get_node(msg.uid) == node
        assert store.node_count() == 1

    def test_get_unknown_returns_none(self):
        store = GraphStore()
        assert store.get_node(_uid(99)) is None

    def test_require_unknown_raises(self):
        store = GraphStore()
        with pytest.raises(GraphStoreError):
            store.require_node(_uid(99))

    def test_edges_from_causes(self):
        store = GraphStore()
        root = _msg(1, src=EXTERNAL, dest="A")
        child = _msg(2, src="A", dest="B", causes=[root.uid], root=root.uid)
        store.add_message(root)
        store.add_message(child)
        assert store.successors(root.uid) == {child.uid}
        assert store.predecessors(child.uid) == {root.uid}
        assert store.edge_count == 1

    def test_self_edge_rejected(self):
        store = GraphStore()
        with pytest.raises(GraphStoreError):
            store.add_edge(_uid(1), _uid(1))

    def test_root_tracking(self):
        store = GraphStore()
        root = _msg(1, src=EXTERNAL, dest="A")
        child = _msg(2, causes=[root.uid], root=root.uid)
        store.add_message(root)
        store.add_message(child)
        assert store.root_of(child.uid) == root.uid
        assert store.root_of(root.uid) == root.uid

    def test_completion_callback_on_response(self):
        seen = []
        store = GraphStore(on_path_complete=seen.append)
        root = _msg(1, src=EXTERNAL, dest="A")
        response = _msg(2, src="A", dest=CLIENT, causes=[root.uid], root=root.uid)
        store.add_message(root)
        assert seen == []
        store.add_message(response)
        assert seen == [root.uid]

    def test_evict_graph(self):
        store = GraphStore()
        root = _msg(1, src=EXTERNAL, dest="A")
        mid = _msg(2, src="A", dest="B", causes=[root.uid], root=root.uid)
        leaf = _msg(3, src="B", dest=CLIENT, causes=[mid.uid], root=root.uid)
        for m in (root, mid, leaf):
            store.add_message(m)
        removed = store.evict_graph(root.uid)
        assert removed == 3
        assert store.node_count() == 0
        assert store.successors(root.uid) == set()

    def test_evict_leaves_other_graphs(self):
        store = GraphStore()
        a = _msg(1, src=EXTERNAL, dest="A")
        b = _msg(10, src=EXTERNAL, dest="A")
        store.add_message(a)
        store.add_message(b)
        store.evict_graph(a.uid)
        assert store.get_node(b.uid) is not None

    def test_cross_partition_edge_counter(self):
        store = GraphStore(num_partitions=2)
        msgs = [_msg(i) for i in range(1, 30)]
        prev = None
        for m in msgs:
            if prev is not None:
                m = m.with_causes(frozenset({prev.uid}))
            store.add_message(m)
            prev = m
        assert 0 < store.cross_partition_edges <= store.edge_count

    def test_index_lookup_counter(self):
        store = GraphStore()
        msg = _msg(1)
        store.add_message(msg)
        before = store.index_lookups
        store.get_node(msg.uid)
        assert store.index_lookups == before + 1

    def test_subscribe_path_complete_multiple_subscribers_in_order(self):
        calls = []
        store = GraphStore(on_path_complete=lambda root: calls.append(("ctor", root)))
        store.subscribe_path_complete(lambda root: calls.append(("sub", root)))
        root = _msg(1, src=EXTERNAL, dest="A")
        response = _msg(2, src="A", dest=CLIENT, causes=[root.uid], root=root.uid)
        store.add_message(root)
        store.add_message(response)
        assert calls == [("ctor", root.uid), ("sub", root.uid)]


class TestEvictGraphEdgeCases:
    def test_evict_follows_shared_cause_into_open_graph(self):
        """Eviction is reachability-based: a node of a still-open graph whose
        *only* link is a cause inside the evicted graph is swept too, but the
        open graph's root and its other descendants survive with clean edges."""
        store = GraphStore()
        root_a = _msg(1, src=EXTERNAL, dest="A")
        shared = _msg(2, src="A", dest="B", causes=[root_a.uid], root=root_a.uid)
        root_b = _msg(10, src=EXTERNAL, dest="A")
        bridged = _msg(
            11, src="A", dest="B", causes=[root_b.uid, shared.uid], root=root_b.uid
        )
        b_only = _msg(12, src="A", dest="B", causes=[root_b.uid], root=root_b.uid)
        for m in (root_a, shared, root_b, bridged, b_only):
            store.add_message(m)

        removed = store.evict_graph(root_a.uid)

        # root_a, shared, and the bridged node (reachable via the shared cause).
        assert removed == 3
        assert store.get_node(root_b.uid) is not None
        assert store.get_node(b_only.uid) is not None
        assert store.node_count() == 2
        # root_b no longer has a dangling out-edge to the swept bridged node.
        assert store.successors(root_b.uid) == {b_only.uid}

    def test_evict_with_sampled_away_cause_uid(self):
        """A cause uid dropped by sampling never materialises as a node; the
        recorded edge must not inflate the removal count and must be cleaned."""
        store = GraphStore()
        phantom = _uid(99)
        root = _msg(1, src=EXTERNAL, dest="A")
        child = _msg(2, src="A", dest="B", causes=[root.uid, phantom], root=root.uid)
        store.add_message(root)
        store.add_message(child)
        assert store.successors(phantom) == {child.uid}

        removed = store.evict_graph(root.uid)

        assert removed == 2  # phantom never existed, only real nodes counted
        assert store.node_count() == 0
        assert store.successors(phantom) == set()

    def test_double_eviction_is_idempotent(self):
        store = GraphStore()
        root = _msg(1, src=EXTERNAL, dest="A")
        leaf = _msg(2, src="A", dest=CLIENT, causes=[root.uid], root=root.uid)
        store.add_message(root)
        store.add_message(leaf)
        assert store.evict_graph(root.uid) == 2
        assert store.evict_graph(root.uid) == 0
        assert store.node_count() == 0

    def test_evict_unknown_root_removes_nothing(self):
        store = GraphStore()
        store.add_message(_msg(1))
        assert store.evict_graph(_uid(77)) == 0
        assert store.node_count() == 1
