"""Unit tests: batched write pipeline and the bounded dead-letter queue."""

import pytest

from repro.core.causal_graph import DirectCausalityTracker
from repro.errors import GraphStoreError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.graphstore.pipeline import BatchedWritePipeline, DeadLetterQueue
from repro.graphstore.sharded import ShardedGraphStore
from repro.graphstore.store import GraphStore
from repro.lang.ir import CLIENT, EXTERNAL
from repro.lang.message import Message, MessageUid
from repro.profiling.profiler import CausalPathProfiler
from repro.telemetry import MetricsRegistry


def _roots(n, process_id=21):
    return [
        Message(MessageUid("h", process_id, seq), "req", EXTERNAL, "A")
        for seq in range(1, n + 1)
    ]


def _chain(root, length, start_seq):
    msgs = [root]
    prev = root
    for i in range(length):
        dest = CLIENT if i == length - 1 else f"C{i}"
        msg = Message(
            MessageUid("h", root.uid.process_id, start_seq + i),
            f"m{i}", f"C{i - 1}" if i else "A", dest,
            cause_uids=frozenset({prev.uid}), root_uid=root.uid,
        )
        msgs.append(msg)
        prev = msg
    return msgs


class TestDeadLetterQueue:
    def test_caps_at_max_size_dropping_oldest(self):
        registry = MetricsRegistry()
        queue = DeadLetterQueue(max_size=3, registry=registry)
        messages = _roots(5)
        for msg in messages:
            queue.append(msg)
        assert len(queue) == 3
        assert [m.uid for m in queue] == [m.uid for m in messages[2:]]
        assert queue.dropped == 2
        assert registry.counter("store.dead_letter_dropped").value == 2
        assert registry.gauge("store.dead_letter_depth").value == 3

    def test_zero_capacity_counts_and_drops_everything(self):
        queue = DeadLetterQueue(max_size=0, registry=MetricsRegistry())
        for msg in _roots(4):
            queue.append(msg)
        assert len(queue) == 0
        assert queue.dropped == 4

    def test_drain_empties_and_resets_depth(self):
        registry = MetricsRegistry()
        queue = DeadLetterQueue(max_size=8, registry=registry)
        messages = _roots(4)
        for msg in messages:
            queue.append(msg)
        drained = queue.drain()
        assert [m.uid for m in drained] == [m.uid for m in messages]
        assert len(queue) == 0
        assert registry.gauge("store.dead_letter_depth").value == 0


class TestBatchedWritePipeline:
    def test_rejects_bad_parameters(self):
        store = GraphStore(registry=MetricsRegistry())
        with pytest.raises(GraphStoreError):
            BatchedWritePipeline(store, batch_size=0)
        with pytest.raises(GraphStoreError):
            BatchedWritePipeline(store, flush_interval_minutes=0.0)

    def test_rejects_targets_with_their_own_injector(self):
        injector = FaultInjector(FaultPlan(store_write_failure_rate=0.5))
        store = GraphStore(registry=MetricsRegistry(), fault_injector=injector)
        with pytest.raises(GraphStoreError):
            BatchedWritePipeline(store, registry=store.telemetry)

    def test_size_bound_flush(self):
        registry = MetricsRegistry()
        store = GraphStore(registry=registry)
        pipeline = BatchedWritePipeline(store, batch_size=4, registry=registry)
        messages = _roots(7)
        for msg in messages[:3]:
            pipeline.submit(msg)
        assert pipeline.buffered == 3
        assert store.node_count() == 0
        pipeline.submit(messages[3])  # 4th write fills the batch
        assert pipeline.buffered == 0
        assert store.node_count() == 4
        assert registry.counter("store.write_batches").value == 1
        assert registry.counter("store.batched_writes").value == 4

    def test_tick_bound_flush(self):
        registry = MetricsRegistry()
        store = GraphStore(registry=registry)
        pipeline = BatchedWritePipeline(
            store, batch_size=100, flush_interval_minutes=2.0, registry=registry
        )
        for msg in _roots(5):
            pipeline.submit(msg)
        assert pipeline.tick(1.0) == 0  # interval not yet elapsed
        assert store.node_count() == 0
        assert pipeline.tick(2.0) == 5
        assert store.node_count() == 5
        assert pipeline.buffered == 0

    def test_routes_by_root_to_shard_buffers(self):
        registry = MetricsRegistry()
        store = ShardedGraphStore(num_shards=4, registry=registry)
        pipeline = BatchedWritePipeline(store, batch_size=1000, registry=registry)
        root = _roots(1, process_id=22)[0]
        chain = _chain(root, 5, start_seq=100)
        for msg in chain:
            pipeline.submit(msg)
        pipeline.flush()
        home = store.shard_for_root(root.uid)
        assert home.node_count() == len(chain)
        assert store.node_count() == len(chain)
        assert store.completed_signature(root.uid) is not None

    def test_preroll_matches_unbatched_retry_bookkeeping(self):
        """Pipeline pre-roll must consume the injector stream and produce
        the retry/backoff/dead-letter counters exactly as the unbatched
        tracker retry loop does for the same seed."""
        messages = _roots(60)

        def unbatched():
            registry = MetricsRegistry()
            injector = FaultInjector(
                FaultPlan(seed=3, store_write_failure_rate=0.4), registry=registry
            )
            store = GraphStore(registry=registry, fault_injector=injector)
            profiler = CausalPathProfiler({}, registry=registry)
            tracker = DirectCausalityTracker(
                profiler, store=store, registry=registry, fault_injector=injector
            )
            tracker.observe_all(messages)
            return registry

        def batched():
            registry = MetricsRegistry()
            injector = FaultInjector(
                FaultPlan(seed=3, store_write_failure_rate=0.4), registry=registry
            )
            store = GraphStore(registry=registry)
            pipeline = BatchedWritePipeline(
                store, batch_size=16, registry=registry, fault_injector=injector
            )
            for msg in messages:
                pipeline.submit(msg)
            pipeline.flush()
            return registry

        keys = (
            "faults.store_write_failures",
            "tracker.store_write_retries",
            "tracker.retry_backoff_ms",
            "tracker.dead_letters",
        )
        a, b = unbatched(), batched()
        assert {k: a.counter(k).value for k in keys} == {
            k: b.counter(k).value for k in keys
        }
        assert a.counter("tracker.dead_letters").value > 0


class TestTrackerDeadLetterCap:
    def test_exhausted_writes_park_up_to_cap(self):
        registry = MetricsRegistry()
        injector = FaultInjector(
            FaultPlan(store_write_failure_rate=1.0), registry=registry
        )
        store = GraphStore(registry=registry, fault_injector=injector)
        profiler = CausalPathProfiler({}, registry=registry)
        tracker = DirectCausalityTracker(
            profiler,
            store=store,
            registry=registry,
            fault_injector=injector,
            max_dead_letters=2,
        )
        tracker.observe_all(_roots(5))
        assert registry.counter("tracker.dead_letters").value == 5
        assert len(tracker.dead_letters) == 2  # capped
        assert tracker.dead_letters.dropped == 3
        assert registry.counter("store.dead_letter_dropped").value == 3

    def test_batched_tracker_parks_in_same_queue(self):
        registry = MetricsRegistry()
        injector = FaultInjector(
            FaultPlan(store_write_failure_rate=1.0), registry=registry
        )
        store = ShardedGraphStore(num_shards=2, registry=registry)
        profiler = CausalPathProfiler({}, registry=registry)
        tracker = DirectCausalityTracker(
            profiler,
            store=store,
            registry=registry,
            fault_injector=injector,
            write_batch_size=8,
            max_dead_letters=3,
        )
        tracker.observe_all(_roots(5))
        assert len(tracker.dead_letters) == 3
        assert tracker.dead_letters.dropped == 2
        assert store.node_count() == 0
