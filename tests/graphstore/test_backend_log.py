"""Crash-safety contract of the append-only log backend.

Every test here simulates a failure mode a real deployment hits: a
process killed mid-flush (torn final frame), bit rot (crc mismatch), a
lost rotation segment (sequence gap), and operator error (fresh-create
over live segments).  The contract under test: damage anywhere but the
tail of the last segment always raises
:class:`~repro.errors.StoreBackendError`; a torn tail raises unless the
caller opts into ``repair_torn_tail=True``, which truncates exactly the
partial frame and keeps every intact record before it.
"""

import os

import pytest

from repro.errors import StoreBackendError
from repro.graphstore.backend import (
    FRAME_HEADER,
    SEGMENT_HEADER,
    LogBackend,
    decode_payload,
    encode_message,
    segment_name,
)
from repro.graphstore.store import GraphStore
from repro.lang.ir import CLIENT, EXTERNAL
from repro.lang.message import Message, MessageUid
from repro.telemetry import MetricsRegistry


def _chain(n=6, seq_base=1, dest_tail=CLIENT):
    """A root plus a linear causal chain of ``n`` messages."""
    root = Message(MessageUid("h", 1, seq_base), "req", EXTERNAL, "A")
    msgs = [root]
    for i in range(n):
        prev = msgs[-1]
        dest = dest_tail if i == n - 1 else f"C{i}"
        msgs.append(
            Message(
                MessageUid("h", 1, seq_base + 1 + i), f"m{i}", prev.dest, dest,
                cause_uids=frozenset({prev.uid}), root_uid=root.uid,
            )
        )
    return msgs


def _observables(store, roots):
    return {
        "node_count": store.node_count(),
        "uids": sorted(store.all_uids()),
        "signatures": {r: store.completed_signature(r) for r in roots},
        "members": {r: store.graph_members(r) for r in roots},
    }


def _write_store(directory, streams, registry=None, **log_options):
    registry = registry if registry is not None else MetricsRegistry()
    backend = LogBackend(str(directory), registry=registry, **log_options)
    store = GraphStore(registry=registry, backend=backend)
    for stream in streams:
        store.add_messages(stream)
        # Per-stream durability point (batch handoff itself never
        # flushes): rotation decisions happen here, between flushes.
        store.flush_journal()
    return store


def _reopen(directory, **kwargs):
    registry = MetricsRegistry()
    backend = LogBackend(
        str(directory), create=False, registry=registry, **kwargs
    )
    store = GraphStore(registry=registry, backend=backend)
    store.recover()
    return store


def _only_segment(directory):
    segments = sorted(
        name for name in os.listdir(directory) if name.startswith("segment-")
    )
    assert len(segments) == 1
    return os.path.join(directory, segments[0])


class TestRoundTrip:
    def test_reopen_rebuilds_identical_store(self, tmp_path):
        msgs = _chain()
        store = _write_store(tmp_path, [msgs])
        expected = _observables(store, [msgs[0].uid])
        store.close()

        recovered = _reopen(tmp_path)
        assert _observables(recovered, [msgs[0].uid]) == expected
        assert recovered.node_count() == len(msgs)

    def test_encode_decode_message_round_trip(self):
        msgs = _chain(3)
        fan_in = Message(
            MessageUid("host-x", 7, 99), "join", "A", CLIENT,
            cause_uids=frozenset(m.uid for m in msgs),
            root_uid=msgs[0].uid, sampled=False,
        )
        op, (decoded,) = decode_payload(encode_message(fan_in))
        assert decoded == fan_in.with_causes(fan_in.cause_uids)

    def test_maintenance_ops_survive_reopen(self, tmp_path):
        a, b = _chain(4, seq_base=1), _chain(4, seq_base=100)
        store = _write_store(tmp_path, [a, b])
        assert store.evict_graph(a[0].uid) == len(a)
        store.close()

        recovered = _reopen(tmp_path)
        assert recovered.completed_signature(a[0].uid) is None
        assert recovered.completed_signature(b[0].uid) is not None
        assert recovered.node_count() == len(b)

    def test_rotation_spreads_segments_and_recovers(self, tmp_path):
        streams = [_chain(6, seq_base=1 + 50 * i) for i in range(8)]
        store = _write_store(tmp_path, streams, segment_bytes=256)
        expected = _observables(store, [s[0].uid for s in streams])
        store.close()
        segments = [n for n in os.listdir(tmp_path) if n.startswith("segment-")]
        assert len(segments) > 2

        recovered = _reopen(tmp_path)
        assert _observables(recovered, [s[0].uid for s in streams]) == expected

    def test_recover_requires_empty_store(self, tmp_path):
        msgs = _chain()
        store = _write_store(tmp_path, [msgs])
        store.close()
        registry = MetricsRegistry()
        backend = LogBackend(str(tmp_path), create=False, registry=registry)
        recovered = GraphStore(registry=registry, backend=backend)
        recovered.add_message(_chain(1, seq_base=999)[0])
        with pytest.raises(StoreBackendError):
            recovered.recover()

    def test_recovery_does_not_refire_completions_or_rejournal(self, tmp_path):
        msgs = _chain()
        store = _write_store(tmp_path, [msgs])
        store.close()
        size_before = os.path.getsize(_only_segment(tmp_path))

        registry = MetricsRegistry()
        backend = LogBackend(str(tmp_path), create=False, registry=registry)
        recovered = GraphStore(registry=registry, backend=backend)
        fired = []
        recovered.subscribe_path_complete(fired.append)
        assert recovered.recover() == len(msgs)
        recovered.close()
        # Replay must not re-append the ops it is reading back, and the
        # completion the original run already delivered must stay delivered.
        assert os.path.getsize(_only_segment(tmp_path)) == size_before
        assert fired == []


class TestTornWrites:
    def test_kill_mid_flush_raises_then_repairs(self, tmp_path):
        """Chop a flush partway through a frame: the crash signature."""
        msgs = _chain(8)
        store = _write_store(tmp_path, [msgs])
        store.close()
        path = _only_segment(tmp_path)
        os.truncate(path, os.path.getsize(path) - 3)

        with pytest.raises(StoreBackendError, match="torn tail"):
            _reopen(tmp_path)
        recovered = _reopen(tmp_path, repair_torn_tail=True)
        # Every record before the torn one survives intact.
        assert recovered.node_count() == len(msgs) - 1
        assert msgs[-1].uid not in set(recovered.all_uids())

    def test_truncation_to_partial_header_repairs(self, tmp_path):
        store = _write_store(tmp_path, [_chain(2)])
        store.close()
        path = _only_segment(tmp_path)
        os.truncate(path, SEGMENT_HEADER.size + FRAME_HEADER.size - 1)

        with pytest.raises(StoreBackendError):
            _reopen(tmp_path)
        recovered = _reopen(tmp_path, repair_torn_tail=True)
        assert recovered.node_count() == 0

    def test_truncation_inside_segment_header_repairs_to_empty(self, tmp_path):
        store = _write_store(tmp_path, [_chain(2)])
        store.close()
        os.truncate(_only_segment(tmp_path), SEGMENT_HEADER.size - 2)

        with pytest.raises(StoreBackendError):
            _reopen(tmp_path)
        recovered = _reopen(tmp_path, repair_torn_tail=True)
        assert recovered.node_count() == 0
        recovered.add_messages(_chain(2))
        recovered.close()
        assert _reopen(tmp_path).node_count() == 3

    def test_crc_corruption_mid_sequence_is_never_repairable(self, tmp_path):
        msgs = _chain(8)
        store = _write_store(tmp_path, [msgs])
        store.close()
        path = _only_segment(tmp_path)
        with open(path, "r+b") as fh:
            fh.seek(SEGMENT_HEADER.size + FRAME_HEADER.size + 2)
            byte = fh.read(1)
            fh.seek(-1, os.SEEK_CUR)
            fh.write(bytes((byte[0] ^ 0xFF,)))

        with pytest.raises(StoreBackendError, match="crc mismatch"):
            _reopen(tmp_path)
        # A mid-sequence tear is not a crash tail: repair must refuse too.
        with pytest.raises(StoreBackendError):
            _reopen(tmp_path, repair_torn_tail=True)

    def test_torn_frame_in_non_final_segment_is_fatal(self, tmp_path):
        streams = [_chain(6, seq_base=1 + 50 * i) for i in range(8)]
        store = _write_store(tmp_path, streams, segment_bytes=256)
        store.close()
        first = os.path.join(tmp_path, segment_name(0))
        os.truncate(first, os.path.getsize(first) - 3)

        with pytest.raises(StoreBackendError, match="final segment"):
            _reopen(tmp_path, repair_torn_tail=True)

    def test_missing_segment_is_a_gap_error(self, tmp_path):
        streams = [_chain(6, seq_base=1 + 50 * i) for i in range(8)]
        store = _write_store(tmp_path, streams, segment_bytes=256)
        store.close()
        os.remove(os.path.join(tmp_path, segment_name(1)))

        with pytest.raises(StoreBackendError, match="gaps"):
            _reopen(tmp_path)

    def test_wrong_magic_and_version_are_fatal(self, tmp_path):
        store = _write_store(tmp_path, [_chain(2)])
        store.close()
        path = _only_segment(tmp_path)
        with open(path, "r+b") as fh:
            fh.write(b"NOPE")
        with pytest.raises(StoreBackendError, match="magic"):
            _reopen(tmp_path)


class TestLifecycle:
    def test_fresh_create_refuses_existing_segments(self, tmp_path):
        store = _write_store(tmp_path, [_chain(2)])
        store.close()
        with pytest.raises(StoreBackendError, match="refusing to create"):
            LogBackend(str(tmp_path), registry=MetricsRegistry())

    def test_reopen_of_empty_directory_fails(self, tmp_path):
        with pytest.raises(StoreBackendError, match="no log segments"):
            LogBackend(str(tmp_path), create=False, registry=MetricsRegistry())

    def test_write_after_close_raises(self, tmp_path):
        store = _write_store(tmp_path, [_chain(2)])
        store.close()
        with pytest.raises(StoreBackendError, match="closed"):
            store.add_message(_chain(1, seq_base=500)[0])

    def test_close_is_idempotent(self, tmp_path):
        store = _write_store(tmp_path, [_chain(2)])
        store.close()
        store.close()

    def test_bad_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(StoreBackendError, match="fsync"):
            LogBackend(str(tmp_path), fsync="always", registry=MetricsRegistry())

    def test_backend_diagnostics_are_volatile_metrics(self, tmp_path):
        """Backend counters must never enter the cross-backend digest."""
        from repro.sim.events import is_volatile_metric_key

        registry = MetricsRegistry()
        store = _write_store(tmp_path, [_chain(4)], registry=registry)
        store.close()
        backend_keys = [
            key for key in registry.snapshot()["metrics"]
            if key.startswith("graphstore.backend_")
        ]
        assert backend_keys  # the backend did report diagnostics
        assert all(is_volatile_metric_key(key) for key in backend_keys)
