"""Tests for the CI benchmark regression gate's baseline workflow.

``benchmarks/check_regression.py`` is a script, not a package module, so
it is loaded from its file path.  These tests exercise the
``--update-baseline`` flow (baselines are regenerated reproducibly, not
hand-edited) and the gate verdicts against a freshly written baseline.
"""

import importlib.util
import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
_SPEC = importlib.util.spec_from_file_location(
    "check_regression", REPO_ROOT / "benchmarks" / "check_regression.py"
)
check_regression = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_regression)


def _results_json(tmp_path, means):
    payload = {
        "benchmarks": [
            {"fullname": name, "stats": {"mean": mean}} for name, mean in means.items()
        ]
    }
    path = tmp_path / "results.json"
    path.write_text(json.dumps(payload), encoding="utf-8")
    return path


def test_update_baseline_writes_schema_calibration_and_means(tmp_path):
    results = _results_json(tmp_path, {"bench_a::test_x": 0.002, "bench_b::test_y": 0.004})
    baseline = tmp_path / "baseline.json"
    rc = check_regression.main(
        ["--results", str(results), "--baseline", str(baseline), "--update-baseline"]
    )
    assert rc == 0
    payload = json.loads(baseline.read_text(encoding="utf-8"))
    assert payload["schema"] == check_regression.BASELINE_SCHEMA
    assert payload["calibration_seconds"] > 0
    assert payload["benchmarks"] == {"bench_a::test_x": 0.002, "bench_b::test_y": 0.004}


def test_gate_passes_against_freshly_updated_baseline(tmp_path):
    means = {"bench_a::test_x": 0.002}
    results = _results_json(tmp_path, means)
    baseline = tmp_path / "baseline.json"
    assert (
        check_regression.main(
            ["--results", str(results), "--baseline", str(baseline), "--update-baseline"]
        )
        == 0
    )
    rc = check_regression.main(
        ["--results", str(results), "--baseline", str(baseline), "--no-calibration"]
    )
    assert rc == 0


def test_gate_fails_on_synthetic_slowdown(tmp_path):
    means = {"bench_a::test_x": 0.002}
    results = _results_json(tmp_path, means)
    baseline = tmp_path / "baseline.json"
    check_regression.main(
        ["--results", str(results), "--baseline", str(baseline), "--update-baseline"]
    )
    rc = check_regression.main(
        [
            "--results",
            str(results),
            "--baseline",
            str(baseline),
            "--no-calibration",
            "--synthetic-slowdown",
            "0.5",
        ]
    )
    assert rc == 1


def test_gate_covers_tracker_throughput_suite():
    assert "benchmarks/bench_micro_tracker.py" in check_regression.BENCH_FILES


def test_gate_covers_fault_matrix():
    assert (
        "benchmarks/bench_robustness_seeds.py::test_bench_fault_matrix_graceful_degradation"
        in check_regression.BENCH_FILES
    )


def test_missing_results_file_reports_clear_error(tmp_path, capsys):
    rc = check_regression.main(["--results", str(tmp_path / "nope.json")])
    assert rc == 2
    err = capsys.readouterr().err
    assert "benchmark results file not found" in err
    assert "--run" in err
    assert "Traceback" not in err


def test_empty_results_file_reports_clear_error(tmp_path, capsys):
    path = tmp_path / "empty.json"
    path.write_text("", encoding="utf-8")
    rc = check_regression.main(["--results", str(path)])
    assert rc == 2
    err = capsys.readouterr().err
    assert "not valid JSON" in err
    assert "Traceback" not in err


def test_results_without_benchmarks_reports_clear_error(tmp_path, capsys):
    path = tmp_path / "hollow.json"
    path.write_text('{"benchmarks": []}', encoding="utf-8")
    rc = check_regression.main(["--results", str(path)])
    assert rc == 2
    err = capsys.readouterr().err
    assert "no benchmark results found" in err
    assert "Traceback" not in err
