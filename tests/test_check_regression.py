"""Tests for the CI benchmark regression gate's baseline workflow.

``benchmarks/check_regression.py`` is a script, not a package module, so
it is loaded from its file path.  These tests exercise the
``--update-baseline`` flow (baselines are regenerated reproducibly, not
hand-edited) and the gate verdicts against a freshly written baseline.
"""

import importlib.util
import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
_SPEC = importlib.util.spec_from_file_location(
    "check_regression", REPO_ROOT / "benchmarks" / "check_regression.py"
)
check_regression = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_regression)


def _results_json(tmp_path, means):
    payload = {
        "benchmarks": [
            {"fullname": name, "stats": {"mean": mean}} for name, mean in means.items()
        ]
    }
    path = tmp_path / "results.json"
    path.write_text(json.dumps(payload), encoding="utf-8")
    return path


def test_update_baseline_writes_schema_calibration_and_means(tmp_path):
    results = _results_json(tmp_path, {"bench_a::test_x": 0.002, "bench_b::test_y": 0.004})
    baseline = tmp_path / "baseline.json"
    rc = check_regression.main(
        ["--results", str(results), "--baseline", str(baseline), "--update-baseline"]
    )
    assert rc == 0
    payload = json.loads(baseline.read_text(encoding="utf-8"))
    assert payload["schema"] == check_regression.BASELINE_SCHEMA
    assert payload["calibration_seconds"] > 0
    assert payload["benchmarks"] == {"bench_a::test_x": 0.002, "bench_b::test_y": 0.004}


def test_gate_passes_against_freshly_updated_baseline(tmp_path):
    means = {"bench_a::test_x": 0.002}
    results = _results_json(tmp_path, means)
    baseline = tmp_path / "baseline.json"
    assert (
        check_regression.main(
            ["--results", str(results), "--baseline", str(baseline), "--update-baseline"]
        )
        == 0
    )
    rc = check_regression.main(
        ["--results", str(results), "--baseline", str(baseline), "--no-calibration"]
    )
    assert rc == 0


def test_gate_fails_on_synthetic_slowdown(tmp_path):
    means = {"bench_a::test_x": 0.002}
    results = _results_json(tmp_path, means)
    baseline = tmp_path / "baseline.json"
    check_regression.main(
        ["--results", str(results), "--baseline", str(baseline), "--update-baseline"]
    )
    rc = check_regression.main(
        [
            "--results",
            str(results),
            "--baseline",
            str(baseline),
            "--no-calibration",
            "--synthetic-slowdown",
            "0.5",
        ]
    )
    assert rc == 1


def test_gate_covers_tracker_throughput_suite():
    assert "benchmarks/bench_micro_tracker.py" in check_regression.BENCH_FILES


def test_gate_covers_fault_matrix():
    assert (
        "benchmarks/bench_robustness_seeds.py::test_bench_fault_matrix_graceful_degradation"
        in check_regression.BENCH_FILES
    )


def test_missing_results_file_reports_clear_error(tmp_path, capsys):
    rc = check_regression.main(["--results", str(tmp_path / "nope.json")])
    assert rc == 2
    err = capsys.readouterr().err
    assert "benchmark results file not found" in err
    assert "--run" in err
    assert "Traceback" not in err


def test_empty_results_file_reports_clear_error(tmp_path, capsys):
    path = tmp_path / "empty.json"
    path.write_text("", encoding="utf-8")
    rc = check_regression.main(["--results", str(path)])
    assert rc == 2
    err = capsys.readouterr().err
    assert "not valid JSON" in err
    assert "Traceback" not in err


def test_results_without_benchmarks_reports_clear_error(tmp_path, capsys):
    path = tmp_path / "hollow.json"
    path.write_text('{"benchmarks": []}', encoding="utf-8")
    rc = check_regression.main(["--results", str(path)])
    assert rc == 2
    err = capsys.readouterr().err
    assert "no benchmark results found" in err
    assert "Traceback" not in err


def test_gate_covers_shard_pipeline_suite():
    assert "benchmarks/bench_shard_pipeline.py" in check_regression.BENCH_FILES


def test_fresh_calibration_cache_skips_measurement(tmp_path, monkeypatch):
    cache = tmp_path / "cache.json"
    cache.write_text(
        json.dumps({"calibration_seconds": 0.123, "measured_at": check_regression.time.time()}),
        encoding="utf-8",
    )

    def boom():
        raise AssertionError("calibrate() must not run on a fresh cache")

    monkeypatch.setattr(check_regression, "calibrate", boom)
    assert check_regression.cached_calibration(cache) == 0.123


def test_stale_calibration_cache_remeasures_and_rewrites(tmp_path, monkeypatch):
    cache = tmp_path / "cache.json"
    cache.write_text(
        json.dumps({"calibration_seconds": 0.123, "measured_at": 0.0}),
        encoding="utf-8",
    )
    monkeypatch.setattr(check_regression, "calibrate", lambda: 0.456)
    assert check_regression.cached_calibration(cache) == 0.456
    payload = json.loads(cache.read_text(encoding="utf-8"))
    assert payload["calibration_seconds"] == 0.456
    assert payload["measured_at"] > 0


def test_corrupt_calibration_cache_degrades_to_measuring(tmp_path, monkeypatch):
    cache = tmp_path / "cache.json"
    cache.write_text("{not json", encoding="utf-8")
    monkeypatch.setattr(check_regression, "calibrate", lambda: 0.789)
    assert check_regression.cached_calibration(cache) == 0.789
    # and the sidecar was repaired for the next run
    assert json.loads(cache.read_text(encoding="utf-8"))["calibration_seconds"] == 0.789


def test_unwritable_calibration_cache_still_returns_measurement(tmp_path, monkeypatch):
    monkeypatch.setattr(check_regression, "calibrate", lambda: 0.321)
    missing_dir = tmp_path / "no" / "such" / "dir" / "cache.json"
    assert check_regression.cached_calibration(missing_dir) == 0.321


def test_no_calibrate_alias(tmp_path, monkeypatch):
    """``--no-calibrate`` is accepted as an alias for ``--no-calibration``."""
    means = {"bench_a::test_x": 0.002}
    results = _results_json(tmp_path, means)
    baseline = tmp_path / "baseline.json"
    check_regression.main(
        ["--results", str(results), "--baseline", str(baseline), "--update-baseline"]
    )

    def boom():
        raise AssertionError("calibration must be skipped under --no-calibrate")

    monkeypatch.setattr(check_regression, "calibrate", boom)
    monkeypatch.setattr(check_regression, "cached_calibration", boom)
    rc = check_regression.main(
        ["--results", str(results), "--baseline", str(baseline), "--no-calibrate"]
    )
    assert rc == 0


def test_check_uses_calibration_cache_path(tmp_path, monkeypatch):
    """The gate reads machine speed through the cache sidecar it is given."""
    means = {"bench_a::test_x": 0.002}
    results = _results_json(tmp_path, means)
    baseline = tmp_path / "baseline.json"
    check_regression.main(
        ["--results", str(results), "--baseline", str(baseline), "--update-baseline"]
    )
    cache = tmp_path / "cal.json"
    baseline_cal = json.loads(baseline.read_text(encoding="utf-8"))["calibration_seconds"]
    cache.write_text(
        json.dumps(
            {"calibration_seconds": baseline_cal, "measured_at": check_regression.time.time()}
        ),
        encoding="utf-8",
    )

    def boom():
        raise AssertionError("fresh sidecar must satisfy the gate's calibration read")

    monkeypatch.setattr(check_regression, "calibrate", boom)
    rc = check_regression.main(
        [
            "--results",
            str(results),
            "--baseline",
            str(baseline),
            "--calibration-cache",
            str(cache),
        ]
    )
    assert rc == 0
