"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.apps import ecommerce, fig4, hedwig, marketcetera, universal_search, zookeeper
from repro.core.dca import analyze_application
from repro.lang.builder import AppBuilder, ComponentBuilder, field, var
from repro.lang.ir import CLIENT


@pytest.fixture(scope="session")
def fig4_app():
    return fig4.build()


@pytest.fixture(scope="session")
def fig4_dca(fig4_app):
    return analyze_application(fig4_app)


@pytest.fixture(scope="session")
def search_app():
    return universal_search.build()


@pytest.fixture(scope="session")
def shop_app():
    return ecommerce.build()


@pytest.fixture(scope="session")
def trading_app():
    return marketcetera.build()


@pytest.fixture(scope="session")
def pubsub_app():
    return hedwig.build()


@pytest.fixture(scope="session")
def coord_app():
    return zookeeper.build()


@pytest.fixture()
def pipeline_app():
    """A tiny 3-stage pipeline used by many unit tests.

    A → B → C → client; A also writes a local-only statistics variable
    that must not end up in V_tr.
    """
    a = ComponentBuilder("A", service_cost=5.0).state("acc", 0).state("stats", 0)
    with a.on("start", "m") as h:
        h.assign("acc", var("acc") + field("m", "x"))
        h.assign("stats", var("stats") + 1)
        h.send("mid", "B", {"v": var("acc")})
    b = ComponentBuilder("B", service_cost=5.0).state("last", 0)
    with b.on("mid", "m") as h:
        h.assign("last", field("m", "v"))
        h.send("end", "C", {"v": var("last") * 2})
    c = ComponentBuilder("C", service_cost=5.0)
    with c.on("end", "m") as h:
        h.send("done", CLIENT, {"v": field("m", "v")})
    return (
        AppBuilder("pipeline")
        .component(a)
        .component(b)
        .component(c)
        .entry("start", "A")
        .build()
    )
