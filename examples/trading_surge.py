#!/usr/bin/env python3
"""Marketcetera under a trading surge: DCA-10% vs CloudWatch.

Runs the trading platform through the first 200 minutes of the Fig. 7
workload (the cyclic phase plus the beginning of the market-data storm)
under both managers, and reports Agility, SLA violations, and where the
machines actually went.

Run:  python examples/trading_surge.py        (~15 s)
"""

from repro.apps.catalog import load_scenario
from repro.evalx.agility import breakdown
from repro.evalx.experiment import ExperimentConfig, run_manager
from repro.evalx.reporting import sparkline


def main() -> None:
    scenario = load_scenario("marketcetera")
    config = ExperimentConfig(duration_minutes=200)

    print("Simulating 200 minutes of the Fig. 7 workload on the trading platform …")
    results = {
        name: run_manager(scenario, name, ExperimentConfig(duration_minutes=200))
        for name in ("CloudWatch", "DCA-10%")
    }

    print("\nWorkload (requests/min):")
    series = [v for _, v in results["DCA-10%"].workload_series()]
    print("  " + sparkline(series, width=80))

    print("\nAgility over time (lower is better):")
    for name, result in results.items():
        series = [v for _, v in result.agility_series()]
        print(f"  {name:12s} {sparkline(series, width=70)}")

    print("\nHeadline metrics:")
    header = f"  {'manager':12s} {'agility':>8s} {'excess':>8s} {'shortage':>9s} {'SLA viol.':>10s}"
    print(header)
    for name, result in results.items():
        b = breakdown(result)
        print(
            f"  {name:12s} {result.agility():8.2f} {b.mean_excess:8.2f} "
            f"{b.mean_shortage:9.2f} {result.sla_violation_percent():9.2f}%"
        )

    print("\nMean provisioned nodes per component (last 50 minutes):")
    comps = sorted(scenario.app.components)
    print(f"  {'component':18s} {'req_min':>8s} {'CloudWatch':>11s} {'DCA-10%':>9s}")
    for comp in comps:
        req = sum(
            r.components[comp].req_min_nodes for r in results["DCA-10%"].records[-50:]
        ) / 50
        row = [req]
        for name in ("CloudWatch", "DCA-10%"):
            prov = sum(
                r.components[comp].provisioned_nodes for r in results[name].records[-50:]
            ) / 50
            row.append(prov)
        print(f"  {comp:18s} {row[0]:8.1f} {row[1]:11.1f} {row[2]:9.1f}")

    cw, dca = results["CloudWatch"].agility(), results["DCA-10%"].agility()
    print(f"\nDCA-10% improves agility {cw / max(dca, 1e-9):.1f}× over CloudWatch here —")
    print("the causal profile routes capacity to the market-data path as the")
    print("storm builds, while CloudWatch scales every tier by the same factor.")


if __name__ == "__main__":
    main()
