#!/usr/bin/env python3
"""Selective scaling of *parts* of a component (Section II-A).

A hurricane spikes the "hurricane" search term.  The spike lands on the
few query-index shards that hold the term — scaling the whole component
uniformly "leads to under-utilization because the resources added are
not going where they are needed most."  This example traces the spike
through hash-partitioned replicas, builds the per-shard causal profile,
and compares selective vs uniform shard allocation.

Run:  python examples/hot_shard_scaling.py
"""

from repro.apps import universal_search
from repro.apps.universal_search import WEB_SHARDS
from repro.core.shards import (
    ShardProfile,
    selective_shard_allocation,
    shard_allocation_agility,
    shard_weights,
    uniform_shard_allocation,
)
from repro.sim.replicas import ReplicaSpec, ReplicatedApplicationRuntime
from repro.workloads.generator import RequestClass

NODE_CAPACITY = 1_875.0
QUERY_COST = 22.0


def main() -> None:
    app = universal_search.build()
    runtime = ReplicatedApplicationRuntime(
        app, {"query-index": ReplicaSpec(count=WEB_SHARDS, routing_field="shard")}
    )

    hurricane = RequestClass("hot", "search", {"kind": "news", "terms": "hurricane"})
    broad = RequestClass("broad", "search", {"kind": "web", "terms": "weather"})

    print("Tracing 300 searches: 70% hurricane-news spike, 30% broad web …")
    profile = ShardProfile()
    for i in range(300):
        cls = hurricane if i % 10 < 7 else broad
        profile.observe(runtime.execute_request(cls))

    weights = shard_weights(profile, "query-index")
    demand = [c * QUERY_COST for c in profile.counts["query-index"]]
    budget = max(WEB_SHARDS, int(sum(demand) / (NODE_CAPACITY * 0.75)) + WEB_SHARDS // 2)

    selective = selective_shard_allocation(budget, weights)
    uniform = uniform_shard_allocation(budget, WEB_SHARDS)

    print(f"\nPer-shard causal profile of the query index ({budget}-node budget):")
    print(f"  {'shard':>5s} {'traffic':>8s} {'weight':>7s} {'selective':>10s} {'uniform':>8s}")
    for idx, (w, sel, uni) in enumerate(zip(weights, selective, uniform)):
        bar = "#" * int(round(w * 30))
        print(f"  {idx:5d} {profile.counts['query-index'][idx]:8d} {w:7.2f} "
              f"{sel:10d} {uni:8d}  {bar}")

    sel_excess, sel_short = shard_allocation_agility(selective, demand, NODE_CAPACITY)
    uni_excess, uni_short = shard_allocation_agility(uniform, demand, NODE_CAPACITY)
    print("\nShard-level provisioning efficacy (node units, lower is better):")
    print(f"  selective: excess {sel_excess:.0f}, shortage {sel_short:.0f} "
          f"→ agility {sel_excess + sel_short:.0f}")
    print(f"  uniform  : excess {uni_excess:.0f}, shortage {uni_short:.0f} "
          f"→ agility {uni_excess + uni_short:.0f}")
    print("\nUniform scaling starves the hot shards while idling the cold ones;")
    print("the per-shard causal profile puts the machines where the spike is.")


if __name__ == "__main__":
    main()
