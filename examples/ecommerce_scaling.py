#!/usr/bin/env python3
"""The paper's Section IV-C worked example, end to end.

An online store receives a 69% purchase / 31% simple-visit traffic mix.
DCA traces the sampled requests, the profiler counts the two causal
paths, and causal probability apportions machines — reproducing the
paper's arithmetic: when the front-end workload doubles and 30 new
machines are needed, Price DB and Inventory get 7 each (×1.69), Customer
Tracking and Ad Serving get 3 each (×1.31), instead of CloudWatch's
"double everything" (50 machines).

Run:  python examples/ecommerce_scaling.py
"""

from repro.apps import ecommerce
from repro.core.causal_graph import DirectCausalityTracker
from repro.core.dca import analyze_application
from repro.core.paths import enumerate_causal_paths
from repro.core.probability import causal_probabilities, component_weights, proportional_allocation
from repro.profiling.profiler import CausalPathProfiler
from repro.sim.runtime import ApplicationRuntime


def main() -> None:
    app = ecommerce.build()
    simple, purchase = ecommerce.request_classes()
    dca = analyze_application(app)
    runtime = ApplicationRuntime(app, dca_result=dca)
    profiler = CausalPathProfiler(enumerate_causal_paths(app))
    tracker = DirectCausalityTracker(profiler)

    print("Driving 1000 visits: 69% purchases, 31% simple visits …")
    for i in range(1000):
        cls = purchase if i % 100 < 69 else simple
        trace = runtime.execute_request(cls, sampled=True)
        tracker.observe_all(trace.messages)

    counts = profiler.counts(0.0)
    probs = causal_probabilities(counts)
    print("\nCausal probabilities (P_c, Section IV-C):")
    for pid, p in sorted(probs.items(), key=lambda kv: -kv[1]):
        if p > 0:
            sig = profiler.known_paths()[pid]
            label = "purchase" if "payment" in sig.components else "simple"
            print(f"  {label:9s} path: P_c = {p:.2f}")

    weights = component_weights(probs, profiler.known_paths())
    print("\nPer-component causal weights (probability a request touches it):")
    for comp, w in sorted(weights.items(), key=lambda kv: -kv[1]):
        print(f"  {comp:18s} {w:.2f}")

    print("\nWorkload doubles; the capacity model asks for 30 more machines.")
    print("Causal-probability apportionment of the 30 machines:")
    scalable = ["web-frontend", "price-db", "inventory", "customer-tracking", "ad-serving"]
    alloc = proportional_allocation(30, weights, scalable)
    total = 0
    for comp in scalable:
        print(f"  {comp:18s} +{alloc[comp]} machines  (weight {weights.get(comp, 0.0):.2f})")
        total += alloc[comp]
    print(f"  total: +{total} machines — versus +50 for CloudWatch's uniform 2×.")
    print("\n(The paper's example: 10 front-end, 7+7 for the 0.69-weight tier,")
    print(" 3+3 for the 0.31-weight tier = 30 machines, a 40% saving.)")


if __name__ == "__main__":
    main()
