#!/usr/bin/env python3
"""Universal Search (Fig. 1): hot causal paths under an election spike.

Shows the paper's Section II-A motivation concretely: a news spike loads
the news service and a *narrow* slice of the query index, so uniform
whole-application scaling wastes machines, while causal-path profiles
pinpoint where the extra load actually lands.

Run:  python examples/universal_search.py
"""

from repro.apps import universal_search
from repro.core.causal_graph import DirectCausalityTracker
from repro.core.dca import analyze_application
from repro.core.paths import enumerate_causal_paths
from repro.core.probability import causal_probabilities, component_weights
from repro.profiling.profiler import CausalPathProfiler
from repro.sim.runtime import ApplicationRuntime


def profile_mix(app, runtime, mix, total=600):
    """Trace ``total`` requests with the given class mix; return weights."""
    profiler = CausalPathProfiler(enumerate_causal_paths(app))
    tracker = DirectCausalityTracker(profiler)
    classes = {c.name: c for c in universal_search.request_classes()}
    cumulative = []
    acc = 0.0
    for name, share in mix.items():
        acc += share
        cumulative.append((acc, classes[name]))
    for i in range(total):
        point = (i % 100) / 100.0
        cls = next(c for bound, c in cumulative if point < bound)
        trace = runtime.execute_request(cls, sampled=True)
        tracker.observe_all(trace.messages)
    probs = causal_probabilities(profiler.counts(0.0))
    return component_weights(probs, profiler.known_paths())


def show(title, weights):
    print(f"\n{title}")
    for comp, w in sorted(weights.items(), key=lambda kv: -kv[1]):
        bar = "#" * int(round(w * 40))
        print(f"  {comp:15s} {w:5.2f} {bar}")


def main() -> None:
    app = universal_search.build()
    runtime = ApplicationRuntime(app, dca_result=analyze_application(app))

    normal = {"web_search": 0.70, "news_search": 0.20, "image_search": 0.10}
    spike = {"web_search": 0.30, "news_search": 0.60, "image_search": 0.10}

    weights_normal = profile_mix(app, runtime, normal)
    weights_spike = profile_mix(app, runtime, spike)

    show("Normal mix (70% web / 20% news / 10% image) — causal weights:", weights_normal)
    show("Election spike (60% news) — causal weights:", weights_spike)

    print("\nWhere should the next machines go? (weight change under the spike)")
    for comp in sorted(set(weights_normal) | set(weights_spike)):
        before = weights_normal.get(comp, 0.0)
        after = weights_spike.get(comp, 0.0)
        delta = after - before
        marker = "▲" if delta > 0.05 else ("▼" if delta < -0.05 else " ")
        print(f"  {marker} {comp:15s} {before:5.2f} → {after:5.2f}")
    print(
        "\nExternal metrics see only 'more traffic'; the causal profile shows the"
        "\nspike lands on news-service (and barely on ads/spell-check) — the"
        "\npaper's argument for selective elastic scaling."
    )


if __name__ == "__main__":
    main()
