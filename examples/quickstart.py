#!/usr/bin/env python3
"""Quickstart: Direct Causality Analysis on the paper's Fig. 4 example.

Walks the full DCA pipeline on a two-component application:

1. define components in the IR;
2. run the static analysis (backward/forward slicing → V_out, V_in, V_tr);
3. execute instrumented handlers and watch provenance identify that
   ``msg1[x:150]`` and ``msg2[y:200]`` directly caused ``msg3[s:22500]``;
4. enumerate the static causal paths the profiler is seeded with.

Run:  python examples/quickstart.py
"""

from repro.apps import fig4
from repro.core.dca import analyze_application
from repro.core.instrument import InstrumentedComponent
from repro.core.paths import enumerate_causal_paths
from repro.lang.ir import EXTERNAL
from repro.lang.message import Message, UidFactory


def main() -> None:
    print("=" * 70)
    print("Step 1 — build the Fig. 4 application (Comp1, Comp2)")
    app = fig4.build()
    for name, comp in sorted(app.components.items()):
        print(f"  {name}: state={sorted(comp.state)}, handles={sorted(comp.handlers)}")

    print()
    print("Step 2 — static Direct Causality Analysis")
    dca = analyze_application(app)
    for name, analysis in sorted(dca.per_component.items()):
        print(f"  {name}:")
        print(f"    V_out (influences some emission) = {sorted(analysis.v_out) or '∅'}")
        for msg_type, v_in in sorted(analysis.v_in.items()):
            print(f"    V_in[{msg_type}] (writable from recv)  = {sorted(v_in) or '∅'}")
        print(f"    V_tr  (tracked at runtime)       = {sorted(analysis.v_tr) or '∅'}")
    print("  → exactly the paper's result: only Comp1.z needs tracking;")
    print("    the writes to p and q are provably irrelevant to emissions.")

    print()
    print("Step 3 — instrumented execution (dynamic provenance)")
    comp1 = InstrumentedComponent(
        app.components["Comp1"], dca.per_component["Comp1"], app.library
    )
    state = comp1.new_state()
    client = UidFactory("client.external", 0)
    uids = UidFactory("10.0.0.1", 1)
    msg1 = Message(client.next_uid(), "msg1", EXTERNAL, "Comp1", {"x": 150})
    msg2 = Message(client.next_uid(), "msg2", EXTERNAL, "Comp1", {"y": 200})
    print(f"  deliver msg1[x:150] as {msg1.uid}")
    out1 = comp1.handle(state, msg1, uids)
    print(f"    tracked writes: {out1.outcome.tracked_writes} "
          f"(z only; p is untracked), instrumentation {out1.instrumentation_ms:.2f} ms")
    print(f"  deliver msg2[y:200] as {msg2.uid}")
    out2 = comp1.handle(state, msg2, uids)
    (msg3,) = out2.outcome.emitted
    print(f"  Comp1 emitted {msg3.msg_type}[s:{msg3.fields['s']}]")
    print(f"    getInfo → direct causes: {sorted(str(u) for u in msg3.cause_uids)}")
    assert msg3.cause_uids == frozenset({msg1.uid, msg2.uid})
    print("  → both message instances are identified, per the paper's Fig. 4.")

    print()
    print("Step 4 — statically enumerated causal paths (profiler seeds)")
    for req_type, paths in sorted(enumerate_causal_paths(app).items()):
        for sig in paths:
            print(f"  {sig.describe()}")
    print("=" * 70)


if __name__ == "__main__":
    main()
