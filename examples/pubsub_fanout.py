#!/usr/bin/env python3
"""Hedwig pub/sub: sampling levels and the overhead/fidelity trade-off.

Traces a publish storm at DCA-5/10/20/100% sampling and shows RQ1/RQ4 in
miniature: instrumentation overhead grows with the sampling rate while
the causal-path profile converges to the true mix — the sweet spot is
where the profile is accurate *enough*.

Run:  python examples/pubsub_fanout.py
"""

from repro.apps import hedwig
from repro.apps.catalog import load_scenario
from repro.core.causal_graph import DirectCausalityTracker
from repro.core.dca import analyze_application
from repro.core.paths import enumerate_causal_paths
from repro.core.probability import causal_probabilities, request_weights
from repro.core.sampling import RequestSampler
from repro.profiling.profiler import CausalPathProfiler
from repro.sim.runtime import ApplicationRuntime

TRUE_MIX = {"publish": 0.55, "subscribe": 0.20, "unsubscribe": 0.05, "consume": 0.20}
REQUESTS = 2_000


def run_at_rate(scenario, rate: int) -> None:
    app = scenario.app
    runtime = ApplicationRuntime(
        app,
        dca_result=analyze_application(app),
        overhead_model=scenario.overhead_model,
        sampling_rate=rate,
    )
    profiler = CausalPathProfiler(enumerate_causal_paths(app))
    tracker = DirectCausalityTracker(profiler)
    sampler = RequestSampler(rate, num_front_ends=scenario.num_front_ends, seed=1)

    classes = {c.name: c for c in hedwig.request_classes()}
    bounds = []
    acc = 0.0
    for name, share in TRUE_MIX.items():
        acc += share
        bounds.append((acc, name))

    base_ms = 0.0
    instr_ms = 0.0
    for i in range(REQUESTS):
        point = (i % 100) / 100.0
        name = next(n for bound, n in bounds if point < bound)
        sampled = sampler.should_sample(i % scenario.num_front_ends)
        trace = runtime.execute_request(classes[name], sampled=sampled)
        base_ms += sum(
            msgs * app.components[c].service_cost
            for c, msgs in trace.component_messages.items()
        )
        instr_ms += sum(trace.component_instr_ms.values())
        if sampled:
            tracker.observe_all(trace.messages)

    probs = causal_probabilities(profiler.counts(0.0))
    observed = request_weights(probs, profiler.known_paths())
    # publish share estimate: pub_request paths' probability mass.
    pub_estimate = observed.get("pub_request", 0.0)
    error = abs(pub_estimate - TRUE_MIX["publish"])
    overhead = 100.0 * instr_ms / base_ms
    print(
        f"  DCA-{int(rate * 100):3d}%  overhead {overhead:5.2f}%   "
        f"publish-share estimate {pub_estimate:.3f} (true 0.550, err {error:.3f})   "
        f"paths traced {tracker.completed_paths}"
    )


def main() -> None:
    scenario = load_scenario("hedwig")
    print(f"Tracing {REQUESTS} pub/sub requests (55% publish, fan-out "
          f"{hedwig.DELIVERY_FANOUT} subscribers per publish) at four sampling levels:\n")
    for rate in (0.05, 0.10, 0.20, 1.0):
        run_at_rate(scenario, rate)
    print(
        "\nOverhead climbs with the sampling rate while the profile error is"
        "\nalready small at 10% — the RQ4 sweet spot the paper reports."
    )


if __name__ == "__main__":
    main()
