"""Sketch-tier profiler gates: read throughput, memory scaling, ε bound.

Synthetic Zipf traffic over 10k–20k causal paths (the "million-path"
regime scaled to CI budgets) drives three gated claims:

* the optimised ``exact`` read (running window totals) is ≥2x the
  pre-PR O(paths × window) scan, retained as
  ``CausalPathProfiler._scan_counts`` — measured ~18x;
* the ``topk`` sketch read also beats the pre-PR scan once the window
  is loaded (≥8 buckets/path on average) — measured ~2x, gated at 1.5x
  for CI jitter;
* sketch memory is O(k): near-flat when the path population doubles
  (gated ≤1.3x, measured ~1.1x) and well under the exact tier's
  bucket state (gated ≤0.7x, measured ~0.55x);
* measured hot-path probability error stays ≤ the documented ε
  (:data:`HOT_PATH_PROBABILITY_EPSILON`).

The wall times land in ``BENCH_profiler_sketch.json`` and feed the
regression gate alongside the other benchmark files.
"""

import sys
import time

import numpy as np

from benchmarks.conftest import run_once
from repro.core.paths import signature_from_edges
from repro.evalx.reporting import format_table
from repro.lang.ir import CLIENT, EXTERNAL
from repro.profiling.profiler import CausalPathProfiler
from repro.profiling.sketches import HOT_PATH_PROBABILITY_EPSILON
from repro.telemetry import MetricsRegistry

N_PATHS = 12_000
N_RECORDS = 240_000
ZIPF_EXPONENT = 1.05
STREAM_MINUTES = 90.0
TOPK_K = 128
SEED = 7
READS = 10

MIN_EXACT_SPEEDUP = 2.0
MIN_TOPK_SPEEDUP = 1.5
MAX_MEMORY_SCALING = 1.3
MAX_SKETCH_TO_EXACT = 0.7
HOT_PATHS_CHECKED = 20


def _make_paths(n):
    return [
        signature_from_edges(
            f"rt{i % 40}",
            ((EXTERNAL, f"rt{i % 40}", "A"), ("A", f"m{i}", "B"), ("B", "done", CLIENT)),
        )
        for i in range(n)
    ]


def _zipf_draws(n_paths, n_records, seed):
    ranks = np.arange(1, n_paths + 1, dtype=float)
    p = 1.0 / ranks**ZIPF_EXPONENT
    p /= p.sum()
    rng = np.random.default_rng(seed)
    return rng.choice(n_paths, size=n_records, p=p)


def _build(n_paths, n_records, mode):
    paths = _make_paths(n_paths)
    by_request = {}
    for sig in paths:
        by_request.setdefault(sig.request_type, []).append(sig)
    profiler = CausalPathProfiler(
        by_request,
        window_minutes=60.0,
        registry=MetricsRegistry(),
        mode=mode,
        topk=TOPK_K,
    )
    for i, idx in enumerate(_zipf_draws(n_paths, n_records, SEED)):
        profiler.record(paths[int(idx)], STREAM_MINUTES * i / n_records)
    return profiler


def _read_seconds(fn, now):
    start = time.perf_counter()
    for _ in range(READS):
        out = fn(now)
    return (time.perf_counter() - start) / READS, out


def _deep_size(obj, seen=None):
    """Recursive ``getsizeof`` over dicts/sequences/slotted objects."""
    if seen is None:
        seen = set()
    oid = id(obj)
    if oid in seen:
        return 0
    seen.add(oid)
    size = sys.getsizeof(obj)
    if isinstance(obj, dict):
        for key, value in obj.items():
            size += _deep_size(key, seen) + _deep_size(value, seen)
    elif isinstance(obj, (list, tuple, set, frozenset)):
        for item in obj:
            size += _deep_size(item, seen)
    elif hasattr(obj, "__slots__"):
        for slot in obj.__slots__:
            if hasattr(obj, slot):
                size += _deep_size(getattr(obj, slot), seen)
    elif hasattr(obj, "__dict__"):
        size += _deep_size(obj.__dict__, seen)
    return size


def _exact_state_bytes(profiler):
    """The exact tier's windowed count state (what the sketch replaces)."""
    return sum(
        _deep_size(part)
        for part in (
            profiler._buckets,
            profiler._totals,
            profiler._epoch_pids,
            profiler._epoch_heap,
            profiler._sample_epochs,
        )
    )


def test_bench_counts_read_throughput(benchmark):
    """Optimised exact + topk reads vs the pre-PR scan, plus the ε check."""

    def measure():
        exact = _build(N_PATHS, N_RECORDS, "exact")
        topk = _build(N_PATHS, N_RECORDS, "topk")
        now = STREAM_MINUTES
        scan_seconds, reference = _read_seconds(exact._scan_counts, now)
        exact_seconds, optimised = _read_seconds(exact.counts, now)
        topk_seconds, estimates = _read_seconds(topk.counts, now)
        assert optimised == reference, "optimised exact read diverged from scan"
        return {
            "scan_seconds": scan_seconds,
            "exact_seconds": exact_seconds,
            "topk_seconds": topk_seconds,
            "reference": reference,
            "estimates": estimates,
            "evictions": topk.sketch_evictions,
        }

    out = run_once(benchmark, measure)

    exact_speedup = out["scan_seconds"] / out["exact_seconds"]
    topk_speedup = out["scan_seconds"] / out["topk_seconds"]
    reference, estimates = out["reference"], out["estimates"]
    n_exact = sum(reference.values())
    n_topk = sum(estimates.values())
    hot = sorted(reference, key=lambda pid: (-reference[pid], pid))[:HOT_PATHS_CHECKED]
    hot_error = max(
        abs(estimates[pid] / n_topk - reference[pid] / n_exact) for pid in hot
    )

    benchmark.extra_info["paths"] = N_PATHS
    benchmark.extra_info["records"] = N_RECORDS
    benchmark.extra_info["scan_ms"] = round(out["scan_seconds"] * 1e3, 3)
    benchmark.extra_info["exact_ms"] = round(out["exact_seconds"] * 1e3, 3)
    benchmark.extra_info["topk_ms"] = round(out["topk_seconds"] * 1e3, 3)
    benchmark.extra_info["exact_speedup"] = round(exact_speedup, 2)
    benchmark.extra_info["topk_speedup"] = round(topk_speedup, 2)
    benchmark.extra_info["hot_path_error"] = round(hot_error, 5)
    benchmark.extra_info["sketch_evictions"] = out["evictions"]

    print()
    print(
        format_table(
            ["read path", "ms/read", "speedup vs scan"],
            [
                ["pre-PR scan", f"{out['scan_seconds'] * 1e3:.2f}", "1.0x"],
                ["exact (running totals)", f"{out['exact_seconds'] * 1e3:.2f}",
                 f"{exact_speedup:.1f}x"],
                ["topk (sketch)", f"{out['topk_seconds'] * 1e3:.2f}",
                 f"{topk_speedup:.1f}x"],
            ],
        )
    )
    print(f"hot-path probability error: {hot_error:.5f} (ε = {HOT_PATH_PROBABILITY_EPSILON})")

    assert exact_speedup >= MIN_EXACT_SPEEDUP, (
        f"exact counts() only {exact_speedup:.2f}x over the pre-PR scan at "
        f"{N_PATHS} paths (need {MIN_EXACT_SPEEDUP}x)"
    )
    assert topk_speedup >= MIN_TOPK_SPEEDUP, (
        f"topk counts() only {topk_speedup:.2f}x over the pre-PR scan at "
        f"{N_PATHS} paths (need {MIN_TOPK_SPEEDUP}x)"
    )
    assert n_topk >= n_exact, "estimate sum lost mass vs the exact total"
    assert hot_error <= HOT_PATH_PROBABILITY_EPSILON, (
        f"hot-path probability error {hot_error:.4f} exceeds the documented "
        f"ε = {HOT_PATH_PROBABILITY_EPSILON}"
    )


def test_bench_sketch_memory_scaling(benchmark):
    """Sketch state must be O(k): flat in paths, well under exact buckets."""

    def measure():
        sizes = {}
        for n_paths in (10_000, 20_000):
            exact = _build(n_paths, 120_000, "exact")
            topk = _build(n_paths, 120_000, "topk")
            topk.counts(STREAM_MINUTES)
            sizes[n_paths] = {
                "exact": _exact_state_bytes(exact),
                "sketch": _deep_size(topk._sketch),
            }
        return sizes

    sizes = run_once(benchmark, measure)

    scaling = sizes[20_000]["sketch"] / sizes[10_000]["sketch"]
    ratio = sizes[10_000]["sketch"] / sizes[10_000]["exact"]
    rows = []
    for n_paths, entry in sorted(sizes.items()):
        rows.append(
            [f"{n_paths}", f"{entry['exact'] / 1e6:.2f} MB", f"{entry['sketch'] / 1e6:.2f} MB"]
        )
        benchmark.extra_info[f"exact_bytes_{n_paths}"] = entry["exact"]
        benchmark.extra_info[f"sketch_bytes_{n_paths}"] = entry["sketch"]
    benchmark.extra_info["sketch_scaling_2x_paths"] = round(scaling, 3)
    benchmark.extra_info["sketch_to_exact_ratio"] = round(ratio, 3)

    print()
    print(format_table(["paths", "exact state", "sketch state"], rows))
    print(f"sketch scaling 10k→20k paths: {scaling:.2f}x; sketch/exact: {ratio:.2f}")

    assert scaling <= MAX_MEMORY_SCALING, (
        f"sketch memory grew {scaling:.2f}x when paths doubled "
        f"(need ≤{MAX_MEMORY_SCALING}x for the O(k) claim)"
    )
    assert ratio <= MAX_SKETCH_TO_EXACT, (
        f"sketch state is {ratio:.2f}x the exact bucket state "
        f"(need ≤{MAX_SKETCH_TO_EXACT}x)"
    )
