"""Ablation — DCA's V_tr restriction vs whole-program dynamic tracking.

"This is a key distinction between DCA and existing whole-program
dynamic slicing and dynamic control/data dependence detection algorithms
— we reduce the overhead by only considering information flow from input
messages to output messages." (Section IV-A)

This ablation quantifies the claim: for each evaluation application,
compare the number of persisted provenance-store operations per request
under (a) DCA's ``V_tr`` instrumentation and (b) naive tracking of every
state variable, while asserting that both produce identical causal
paths (V_tr loses no causality information).
"""

import pytest

from benchmarks.conftest import get_scenario, run_once
from repro.core.dca import analyze_application
from repro.evalx.reporting import format_table
from repro.lang.interpreter import Interpreter, ReplicaState
from repro.lang.message import UidFactory
from repro.sim.runtime import ApplicationRuntime


def _ops_per_request(scenario, track_all: bool):
    """Total persisted stores across one trace of every request class."""
    app = scenario.app
    dca = analyze_application(app)
    library = app.library
    interpreters = {}
    states = {}
    factories = {}
    for idx, (name, comp) in enumerate(sorted(app.components.items()), start=1):
        tracked = None if track_all else set(dca.per_component[name].v_tr)
        interpreters[name] = Interpreter(
            comp, library, tracked_vars=tracked, track_all=track_all
        )
        states[name] = ReplicaState.from_component(comp)
        factories[name] = UidFactory(f"10.0.{int(track_all)}.{idx}", idx)

    from collections import deque

    from repro.lang.ir import CLIENT, EXTERNAL
    from repro.lang.message import Message

    total_stores = 0
    signatures = []
    ext = UidFactory("client", 9)
    for request in scenario.classes:
        entry = app.entry_points[request.request_type]
        root = Message(ext.next_uid(), request.request_type, EXTERNAL, entry,
                       dict(request.fields))
        queue = deque([root])
        edges = set()
        while queue:
            msg = queue.popleft()
            edges.add((msg.src, msg.msg_type, msg.dest))
            if msg.dest == CLIENT:
                continue
            outcome = interpreters[msg.dest].handle(states[msg.dest], msg, factories[msg.dest])
            total_stores += outcome.tracked_writes
            queue.extend(outcome.emitted)
        signatures.append(tuple(sorted(edges)))
    return total_stores, signatures


@pytest.mark.parametrize("app_name", ["marketcetera", "hedwig", "zookeeper"])
def test_ablation_vtr_vs_whole_program(benchmark, app_name):
    scenario = get_scenario(app_name)

    def measure():
        dca_ops, dca_sigs = _ops_per_request(scenario, track_all=False)
        full_ops, full_sigs = _ops_per_request(scenario, track_all=True)
        return dca_ops, full_ops, dca_sigs, full_sigs

    dca_ops, full_ops, dca_sigs, full_sigs = run_once(benchmark, measure)
    saving = 1.0 - dca_ops / max(1, full_ops)
    print(f"\n{app_name}: persisted stores per request mix — "
          f"whole-program {full_ops}, DCA V_tr {dca_ops} "
          f"({100 * saving:.0f}% fewer)")
    # The restriction must save work …
    assert dca_ops < full_ops
    # … without changing any causal path.
    assert dca_sigs == full_sigs


def test_ablation_vtr_fraction_table(benchmark):
    """How much of each component's state DCA actually instruments."""

    def measure():
        rows = []
        for app_name in ("marketcetera", "hedwig", "zookeeper"):
            scenario = get_scenario(app_name)
            dca = analyze_application(scenario.app)
            tracked = dca.total_tracked_vars()
            total = sum(a.state_var_count for a in dca.per_component.values())
            rows.append([app_name, str(tracked), str(total), f"{100 * tracked / total:.0f}%"])
        return rows

    rows = run_once(benchmark, measure)
    print()
    print(format_table(["application", "V_tr vars", "state vars", "instrumented"], rows))
    for row in rows:
        assert int(row[1]) < int(row[2])  # strictly fewer than all state vars
