"""Fig. 8 — average agility per application per elasticity manager.

Regenerates the paper's headline table over the full 450-minute Fig. 7
run.  Paper values (Marketcetera / Hedwig):

    CloudWatch 18.19/15.45, ElasticRMI 10.27/6.91, HTrace 14.23/11.18,
    DCA-100% 11.35/9.9, DCA-5% 2.91/2.29, DCA-10% 1.57/1.27,
    DCA-20% 7.53/6.74.

Absolute values depend on the testbed; the assertions pin the paper's
*orderings* (Section V-D): DCA-10% best, then DCA-5%, then DCA-20%, then
ElasticRMI, DCA-100%, HTrace+CW, and CloudWatch worst — and CloudWatch's
agility never reaching zero.
"""

import pytest

from benchmarks.conftest import get_full_results, run_once
from repro.evalx.agility import breakdown
from repro.evalx.reporting import fig8_table

PAPER_ORDER = (
    "DCA-10%",
    "DCA-5%",
    "DCA-20%",
    "ElasticRMI",
    "DCA-100%",
    "HTrace+CW",
    "CloudWatch",
)


@pytest.mark.parametrize("app_name", ["marketcetera", "hedwig"])
def test_fig8_average_agility(benchmark, app_name):
    results = run_once(benchmark, lambda: get_full_results(app_name))
    print()
    print(fig8_table({app_name: results}))
    agility = {name: res.agility() for name, res in results.items()}
    for better, worse in zip(PAPER_ORDER, PAPER_ORDER[1:]):
        assert agility[better] <= agility[worse] * 1.01, (
            f"{app_name}: expected {better} ({agility[better]:.2f}) <= "
            f"{worse} ({agility[worse]:.2f})"
        )


def test_fig8_cloudwatch_never_reaches_zero(benchmark):
    """'[CloudWatch's agility] never reaches zero; in fact, it is never
    lower than ten' — we assert the never-zero part and a high floor."""
    results = run_once(benchmark, lambda: get_full_results("marketcetera"))
    cw = results["CloudWatch"]
    assert cw.zero_agility_fraction() == 0.0
    series = [v for _, v in cw.agility_series()]
    assert min(series) > 0


def test_fig8_cloudwatch_at_least_1_5x_dca100(benchmark):
    """'CloudWatch's agility is at least 50% higher than even DCA-100%'
    holds on Hedwig and approximately on Marketcetera."""
    results = run_once(benchmark, lambda: get_full_results("hedwig"))
    assert results["CloudWatch"].agility() >= 1.4 * results["DCA-100%"].agility()


def test_fig8_dca10_zero_agility_most_frequent(benchmark):
    """DCA-10% hits zero agility more often than any other manager (the
    paper reports ≈48% of intervals on its testbed)."""
    results = run_once(benchmark, lambda: get_full_results("marketcetera"))
    zero = {name: res.zero_agility_fraction() for name, res in results.items()}
    best = max(zero, key=zero.get)
    assert best in ("DCA-10%", "DCA-20%"), zero
    assert zero["DCA-10%"] >= zero["CloudWatch"]
    assert zero["DCA-10%"] >= zero["DCA-100%"]


def test_fig8_dca100_agility_is_overhead_excess(benchmark):
    """RQ3: DCA-100%'s large agility is excess (over-provisioning for the
    tracking overhead), not starvation."""
    results = run_once(benchmark, lambda: get_full_results("marketcetera"))
    b = breakdown(results["DCA-100%"])
    assert b.excess_dominated
    assert b.mean_shortage < 0.1 * b.mean_excess
