"""Ablation — selective scaling of *parts* of components (Section II-A).

"There are spikes in specific search terms. This, in turn, causes
workload spikes on specific portions/nodes of each component … it will
lead to under-utilization because the resources added are not going
where they are needed most."

This bench builds a shard-level causal profile of the universal-search
query index under a hot-term spike (traced through hash-partitioned
replicas) and compares selective per-shard allocation against uniform
shard scaling at the same node budget.
"""

import pytest

from benchmarks.conftest import run_once
from repro.apps import universal_search
from repro.apps.universal_search import WEB_SHARDS
from repro.core.shards import (
    ShardProfile,
    selective_shard_allocation,
    shard_allocation_agility,
    shard_weights,
    uniform_shard_allocation,
)
from repro.evalx.reporting import format_table
from repro.sim.replicas import ReplicaSpec, ReplicatedApplicationRuntime
from repro.workloads.generator import RequestClass

NODE_CAPACITY = 1_875.0
QUERY_COST = 22.0  # query-index service cost (ms/message)


def _profile_and_demand(hot_fraction: float, requests: int = 300):
    """Trace a mixed workload; return (per-shard weights, per-shard demand)."""
    app = universal_search.build()
    runtime = ReplicatedApplicationRuntime(
        app, {"query-index": ReplicaSpec(count=WEB_SHARDS, routing_field="shard")}
    )
    hot = RequestClass("hot", "search", {"kind": "news", "terms": "hurricane"})
    broad = RequestClass("broad", "search", {"kind": "web", "terms": "weather"})
    profile = ShardProfile()
    for i in range(requests):
        cls = hot if (i % 100) < hot_fraction * 100 else broad
        profile.observe(runtime.execute_request(cls))
    counts = profile.counts["query-index"]
    demand = [c * QUERY_COST for c in counts]  # ms of work per shard
    return shard_weights(profile, "query-index"), demand


def test_selective_shard_scaling_beats_uniform(benchmark):
    def measure():
        rows = []
        for hot_fraction in (0.0, 0.3, 0.7):
            weights, demand = _profile_and_demand(hot_fraction)
            budget = max(
                WEB_SHARDS,
                int(sum(demand) / (NODE_CAPACITY * 0.75)) + WEB_SHARDS // 2,
            )
            selective = selective_shard_allocation(budget, weights)
            uniform = uniform_shard_allocation(budget, WEB_SHARDS)
            sel = sum(shard_allocation_agility(selective, demand, NODE_CAPACITY))
            uni = sum(shard_allocation_agility(uniform, demand, NODE_CAPACITY))
            rows.append((hot_fraction, budget, sel, uni))
        return rows

    rows = run_once(benchmark, measure)
    print()
    print(
        format_table(
            ["hot-term share", "budget (nodes)", "selective agility", "uniform agility"],
            [[f"{h:.0%}", str(b), f"{s:.1f}", f"{u:.1f}"] for h, b, s, u in rows],
        )
    )
    for hot_fraction, _, selective, uniform in rows:
        assert selective <= uniform
    # With a strong hot-term spike the gap must be decisive.
    *_, (_, _, sel_hot, uni_hot) = rows
    assert sel_hot < 0.7 * uni_hot


def test_hot_term_concentrates_on_few_shards(benchmark):
    """Ground truth of the motivating claim: the news path touches only
    the narrow shard slice, so most of the index is cold."""

    def measure():
        weights, _ = _profile_and_demand(hot_fraction=1.0, requests=100)
        return weights

    weights = run_once(benchmark, measure)
    hot_shards = sum(1 for w in weights if w > 0.01)
    assert hot_shards <= 4
    assert max(weights) > 0.25
