"""End-to-end tracker throughput: observe → complete → evict.

The DCA hot path is the store→tracker→profiler pipeline: every sampled
message is inserted into the graph store, every response closes a causal
path whose signature is handed to the profiler, and the completed graph
is evicted to bound memory.  These benchmarks push synthetic message
batches through :class:`DirectCausalityTracker` end to end and report
messages/sec in ``extra_info`` so the perf trajectory of the pipeline is
tracked by CI's regression gate alongside raw wall-clock stats.

Three shapes cover the store's behaviours: linear chains (depth-dominated),
fan-out/fan-in trees (width-dominated, shared causes), and chains with
sampling gaps (causes that never materialise as nodes).
"""

from repro.core.causal_graph import DirectCausalityTracker
from repro.lang.ir import CLIENT, EXTERNAL
from repro.lang.message import Message, MessageUid
from repro.profiling.profiler import CausalPathProfiler


def _chain_requests(num_requests, depth):
    """Independent root→…→response chains, one batch per request."""
    batches = []
    seq = 1
    for _ in range(num_requests):
        root = Message(MessageUid("h", 1, seq), "req", EXTERNAL, "C0")
        seq += 1
        msgs = [root]
        prev = root
        for i in range(1, depth):
            dest = CLIENT if i == depth - 1 else f"C{i}"
            msg = Message(
                MessageUid("h", 1, seq),
                f"m{i}",
                f"C{i - 1}",
                dest,
                cause_uids=frozenset({prev.uid}),
                root_uid=root.uid,
            )
            seq += 1
            msgs.append(msg)
            prev = msg
        batches.append(msgs)
    return batches


def _tree_requests(num_requests, fanout, levels):
    """Fan-out trees whose leaves fan back in to a single response."""
    batches = []
    seq = 1
    for _ in range(num_requests):
        root = Message(MessageUid("h", 2, seq), "req", EXTERNAL, "L0")
        seq += 1
        msgs = [root]
        frontier = [root]
        for level in range(1, levels + 1):
            next_frontier = []
            for parent in frontier:
                for k in range(fanout):
                    msg = Message(
                        MessageUid("h", 2, seq),
                        f"t{level}.{k}",
                        f"L{level - 1}",
                        f"L{level}",
                        cause_uids=frozenset({parent.uid}),
                        root_uid=root.uid,
                    )
                    seq += 1
                    msgs.append(msg)
                    next_frontier.append(msg)
            frontier = next_frontier
        response = Message(
            MessageUid("h", 2, seq),
            "done",
            f"L{levels}",
            CLIENT,
            cause_uids=frozenset(leaf.uid for leaf in frontier),
            root_uid=root.uid,
        )
        seq += 1
        msgs.append(response)
        batches.append(msgs)
    return batches


def _gapped_requests(num_requests, depth, gap_every=5):
    """Chains where every ``gap_every``-th hop was sampled away.

    The missing node's uid still appears as a cause of its effect, so the
    store records a dangling edge; everything downstream of the gap is
    disconnected from the root and must be excluded from the signature.
    """
    batches = []
    seq = 1
    for _ in range(num_requests):
        root = Message(MessageUid("h", 3, seq), "req", EXTERNAL, "C0")
        seq += 1
        msgs = [root]
        prev = root
        for i in range(1, depth):
            dest = CLIENT if i == depth - 1 else f"C{i}"
            msg = Message(
                MessageUid("h", 3, seq),
                f"m{i}",
                f"C{i - 1}",
                dest,
                cause_uids=frozenset({prev.uid}),
                root_uid=root.uid,
                sampled=(i % gap_every != 0),
            )
            seq += 1
            msgs.append(msg)
            prev = msg
        batches.append(msgs)
    return batches


def _pipeline():
    profiler = CausalPathProfiler({})
    tracker = DirectCausalityTracker(profiler)
    return tracker


def _drive(benchmark, batches, min_completions):
    tracker = _pipeline()
    total_messages = sum(len(batch) for batch in batches)

    def run():
        for batch in batches:
            tracker.observe_all(batch)
        return tracker.completed_paths

    benchmark(run)
    assert tracker.completed_paths >= min_completions
    assert tracker.store.node_count() == 0  # every graph evicted
    benchmark.extra_info["messages_per_round"] = total_messages
    if benchmark.stats.stats.mean > 0:
        benchmark.extra_info["messages_per_sec"] = round(
            total_messages / benchmark.stats.stats.mean
        )


def test_bench_tracker_chain_throughput(benchmark):
    _drive(benchmark, _chain_requests(num_requests=40, depth=25), min_completions=40)


def test_bench_tracker_fanout_throughput(benchmark):
    # 1 + 3 + 9 + 27 + 1 = 41 messages per request.
    _drive(benchmark, _tree_requests(num_requests=25, fanout=3, levels=3), min_completions=25)


def test_bench_tracker_sampling_gap_throughput(benchmark):
    tracker = _pipeline()
    batches = _gapped_requests(num_requests=40, depth=24, gap_every=5)
    total_messages = sum(len(batch) for batch in batches)

    def run():
        for batch in batches:
            tracker.observe_all(batch)
        return tracker.completed_paths

    benchmark(run)
    # Each response closes a (truncated) path: the hops downstream of the
    # first gap are disconnected from the root and excluded from the
    # signature, and eviction cannot reach them — the worst case for
    # completion bookkeeping.
    assert tracker.completed_paths >= 40
    assert tracker.store.node_count() <= total_messages
    benchmark.extra_info["messages_per_round"] = total_messages
    if benchmark.stats.stats.mean > 0:
        benchmark.extra_info["messages_per_sec"] = round(
            total_messages / benchmark.stats.stats.mean
        )
