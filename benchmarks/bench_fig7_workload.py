"""Fig. 7 — the 450-minute workload pattern driving all experiments.

Regenerates the pattern (cyclic "regular" variations, step-wise increase
and decrease, abrupt increase and decrease) and prints it as a sparkline;
asserts the phase structure and benchmarks the workload generator's
throughput.
"""

import pytest

from benchmarks.conftest import get_scenario, run_once
from repro.evalx.reporting import sparkline
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.patterns import ScaledPattern, paper_pattern


def test_fig7_pattern_shape(benchmark):
    series = run_once(benchmark, lambda: [paper_pattern(float(t)) for t in range(450)])
    print()
    print("Fig. 7 workload pattern (A=0, B=1):")
    print(" ", sparkline(series, width=90))
    # Cyclic head: several oscillations in the first 180 minutes.
    head = series[:180]
    crossings = sum(
        1
        for a, b in zip(head, head[1:])
        if (a - 0.45) * (b - 0.45) < 0
    )
    assert crossings >= 4
    # Step-wise increase (180–240), abrupt decrease (~255), ramp (270–330),
    # plateau, rapid fall (360–390).
    assert series[238] > series[182]
    assert series[256] < series[254] - 0.2
    assert series[329] > series[271] + 0.5
    assert max(series[330:360]) == pytest.approx(0.95)
    assert series[389] < series[361] - 0.5


def test_fig7_magnitudes_differ_per_benchmark(benchmark):
    """'The values of points A and B … are different for the four systems
    depending on the benchmark.'"""

    def load():
        return {
            name: get_scenario(name).magnitudes
            for name in ("marketcetera", "hedwig", "zookeeper")
        }

    magnitudes = run_once(benchmark, load)
    assert len(set(magnitudes.values())) == 3
    for low, high in magnitudes.values():
        assert 0 < low < high


def test_fig7_generator_throughput(benchmark):
    """Microbenchmark: per-minute arrival draws across the full run."""
    scenario = get_scenario("marketcetera")
    low, high = scenario.magnitudes
    generator = WorkloadGenerator(
        ScaledPattern(paper_pattern, low, high), scenario.mix, scenario.classes, seed=1
    )

    def draw_full_run():
        return [generator.arrivals(float(t)) for t in range(450)]

    draws = benchmark(draw_full_run)
    assert len(draws) == 450
    assert all(sum(d.values()) >= 0 for d in draws)
