"""Fig. 6 — provisioning efficacy over time: agility and % SLA violations.

Regenerates the paper's four time-series panels (agility and SLA
violations over the 450-minute run, for Marketcetera and Hedwig) as
sparkline reports, and asserts the RQ5 findings:

* SLA violations vanish while the workload decreases (excess capacity
  pending de-provisioning keeps serving);
* all DCA variants stay below ~5% violations; DCA-100% is the lowest of
  the DCA family;
* CloudWatch has the most violations; ElasticRMI violates more than DCA.
"""

import pytest

from benchmarks.conftest import get_full_results, run_once
from repro.evalx.reporting import fig6_report, sla_table
from repro.evalx.sla import sla_report


@pytest.mark.parametrize("app_name", ["marketcetera", "hedwig"])
def test_fig6_timeseries_report(benchmark, app_name):
    results = run_once(benchmark, lambda: get_full_results(app_name))
    print()
    print(fig6_report(results, app_name))
    print()
    print(sla_table({app_name: results}))
    # Every manager's series covers the full run.
    for res in results.values():
        assert len(res.agility_series()) == 450
        assert len(res.sla_violation_series()) == 450


@pytest.mark.parametrize("app_name", ["marketcetera", "hedwig"])
def test_fig6_decreasing_intervals_are_safer(benchmark, app_name):
    """'SLA violations do not occur when the workload is decreasing.'

    Reproduced with a caveat (see EXPERIMENTS.md): our workload's request
    mix keeps drifting *through* whole-application downswings, so
    path-sensitive managers can still starve an individual hot component
    while total traffic falls.  The robust form of the paper's claim —
    decreasing intervals are strictly safer than the run overall, and the
    excess-holding managers (ElasticRMI, HTrace+CW) drop to ≈0 — holds.
    """
    results = run_once(benchmark, lambda: get_full_results(app_name))
    for name, res in results.items():
        report = sla_report(res)
        if report.violation_percent > 1.0:
            assert report.violation_percent_while_decreasing < report.violation_percent, (
                f"{name}: decreasing intervals not safer"
            )
    for name in ("ElasticRMI", "HTrace+CW"):
        report = sla_report(results[name])
        assert report.violation_percent_while_decreasing <= 1.0, (
            f"{name} violates while decreasing: "
            f"{report.violation_percent_while_decreasing:.2f}%"
        )


def test_fig6_sla_ordering(benchmark):
    """RQ5 orderings: CloudWatch worst; ElasticRMI worse than the DCA
    sweet-spot variants; sampling increases violations only mildly."""
    results = run_once(benchmark, lambda: get_full_results("marketcetera"))
    sla = {name: res.sla_violation_percent() for name, res in results.items()}
    assert sla["CloudWatch"] == max(sla.values())
    assert sla["DCA-100%"] <= sla["DCA-10%"]
    assert sla["DCA-10%"] <= sla["DCA-5%"]
    assert sla["DCA-10%"] < sla["CloudWatch"]
    assert sla["DCA-100%"] < sla["ElasticRMI"]


def test_fig6_dca_violations_within_tolerance(benchmark):
    """Sampling keeps violations at an 'acceptable threshold' — single
    digits for the 5–20% variants on both apps."""
    results_m = run_once(benchmark, lambda: get_full_results("marketcetera"))
    results_h = get_full_results("hedwig")  # cached; timing only the first
    for results in (results_m, results_h):
        for variant in ("DCA-5%", "DCA-10%", "DCA-20%"):
            assert results[variant].sla_violation_percent() < 12.0
