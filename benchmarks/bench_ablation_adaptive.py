"""Ablation (extension) — adaptive and preferential sampling.

Two extensions that follow naturally from RQ4 and the paper's
preferential-path-profiling citation:

* the **adaptive controller** holds measured overhead at a budget
  instead of pinning the rate, so apps with different instruction mixes
  land on different (correct) rates automatically;
* the **preferential sampler** spends the same tracing budget unevenly,
  oversampling rare request types so their path counts stay usable.
"""

import pytest

from benchmarks.conftest import get_scenario, run_once
from repro.core.dca import analyze_application
from repro.core.sampling import AdaptiveSamplingController, PreferentialPathSampler, RequestSampler
from repro.evalx.reporting import format_table
from repro.sim.runtime import ApplicationRuntime


def _overhead_per_rate(app_name: str) -> float:
    """Aggregate overhead fraction per unit sampling rate for this app."""
    scenario = get_scenario(app_name)
    runtime = ApplicationRuntime(
        scenario.app,
        dca_result=analyze_application(scenario.app),
        overhead_model=scenario.overhead_model,
        sampling_rate=1.0,
    )
    base = instr = 0.0
    for cls in scenario.classes:
        trace = runtime.execute_request(cls, sampled=True)
        base += sum(
            msgs * scenario.app.components[c].service_cost
            for c, msgs in trace.component_messages.items()
        )
        instr += sum(trace.component_instr_ms.values())
    return instr / base


def test_adaptive_controller_finds_per_app_rates(benchmark):
    """Different instruction mixes → different converged rates, all at
    the same 5% overhead budget."""

    def converge():
        out = {}
        for app_name in ("marketcetera", "hedwig", "zookeeper"):
            slope = _overhead_per_rate(app_name)
            ctrl = AdaptiveSamplingController(target_overhead=0.05)
            rate = 0.5
            for _ in range(30):
                rate = ctrl.update(rate, rate * slope)
            out[app_name] = (rate, rate * slope)
        return out

    results = run_once(benchmark, converge)
    rows = [
        [app, f"{rate:.3f}", f"{100 * overhead:.2f}%"]
        for app, (rate, overhead) in sorted(results.items())
    ]
    print()
    print(format_table(["application", "converged rate", "overhead"], rows))
    for app, (rate, overhead) in results.items():
        assert overhead == pytest.approx(0.05, rel=0.05), app
    # Apps with heavier instrumentation converge to lower rates.
    assert results["marketcetera"][0] < results["hedwig"][0] * 1.2


def test_preferential_sampling_rescues_rare_paths(benchmark):
    """At the same 5% budget, preferential sampling multiplies the rare
    type's per-minute sample count versus uniform sampling."""

    shares = {"hot": 0.92, "rare": 0.08}
    arrivals_per_min = 600

    def simulate():
        pref = PreferentialPathSampler(0.05, seed=3)
        pref.update_rates(shares)
        uni = RequestSampler(0.05, seed=3)
        pref_rare = uni_rare = 0
        minutes = 60
        for _ in range(minutes):
            rare_arrivals = int(arrivals_per_min * shares["rare"])
            pref_rare += pref.sample_count("rare", rare_arrivals)
            uni_rare += uni.sample_count(rare_arrivals)
        return pref_rare / minutes, uni_rare / minutes, pref.effective_budget(shares)

    pref_rate, uni_rate, budget = run_once(benchmark, simulate)
    print(f"\nrare-path samples/min: preferential {pref_rate:.1f} vs uniform {uni_rate:.1f} "
          f"(same {100 * budget:.1f}% budget)")
    assert budget == pytest.approx(0.05, rel=1e-6)
    assert pref_rate > 1.8 * uni_rate
