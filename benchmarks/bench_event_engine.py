"""Event-engine speedup: the discrete-event core vs the tick oracle.

Runs the scenario suite (marketcetera, hedwig, zookeeper) under the
DCA-100% manager — the costliest configuration, every request sampled —
for 320 simulated minutes with ``max_live_traces_per_class=16`` under
both engines, asserts bit-identical ``IntervalRecord`` streams, and
pins the tentpole claim CI gates on: the event engine's converged
replay must deliver at least a **10x aggregate** wall-clock speedup
over the suite, with a per-scenario sanity floor of 4x (zookeeper's
headroom is capped by the shared per-interval manager/demand/serve
work that no ingestion strategy can remove).

The per-engine wall times also feed the regression gate: a change that
slows the event engine (or quietly speeds up tick by breaking it)
shows up against ``benchmarks/baseline.json``.
"""

import gc
import time

from benchmarks.conftest import run_once
from repro.apps.catalog import load_scenario
from repro.evalx.experiment import ExperimentConfig, build_simulator
from repro.evalx.reporting import format_table
from repro.sim.engine import SimulationConfig
from repro.sim.parity import diff_results
from repro.telemetry import MetricsRegistry

SCENARIOS = ("marketcetera", "hedwig", "zookeeper")
MANAGER = "DCA-100%"
DURATION_MINUTES = 320
MAX_LIVE = 16
SEED = 7

#: CI-gated floors (measured headroom: ~23x/10x/6x per scenario,
#: ~15x aggregate on the baseline machine).
MIN_AGGREGATE_SPEEDUP = 10.0
MIN_SCENARIO_SPEEDUP = 4.0


def _run_engine(scenario_name, engine):
    """Wall seconds + result for one seeded scenario run under ``engine``."""
    sim_config = SimulationConfig()
    sim_config.max_live_traces_per_class = MAX_LIVE
    config = ExperimentConfig(
        duration_minutes=DURATION_MINUTES,
        seed=SEED,
        sim=sim_config,
        engine=engine,
    )
    sim = build_simulator(
        load_scenario(scenario_name), MANAGER, config=config,
        registry=MetricsRegistry(),
    )
    gc.collect()
    start = time.perf_counter()
    result = sim.run()
    return time.perf_counter() - start, result


def test_bench_event_engine_speedup(benchmark):
    """Tick-vs-event wall clock over the suite; parity asserted per run."""

    def measure():
        timings = {}
        for scenario_name in SCENARIOS:
            tick_seconds, tick_result = _run_engine(scenario_name, "tick")
            event_seconds, event_result = _run_engine(scenario_name, "event")
            diffs = diff_results(tick_result, event_result)
            assert not diffs, f"{scenario_name}: engines diverged: {diffs[:3]}"
            timings[scenario_name] = (tick_seconds, event_seconds)
        return timings

    timings = run_once(benchmark, measure)

    rows = []
    total_tick = total_event = 0.0
    for scenario_name in SCENARIOS:
        tick_seconds, event_seconds = timings[scenario_name]
        total_tick += tick_seconds
        total_event += event_seconds
        speedup = tick_seconds / event_seconds
        benchmark.extra_info[f"tick_seconds_{scenario_name}"] = round(tick_seconds, 4)
        benchmark.extra_info[f"event_seconds_{scenario_name}"] = round(event_seconds, 4)
        benchmark.extra_info[f"speedup_{scenario_name}"] = round(speedup, 2)
        rows.append(
            [scenario_name, f"{tick_seconds:.2f}s", f"{event_seconds:.2f}s",
             f"{speedup:.1f}x"]
        )
    aggregate = total_tick / total_event
    benchmark.extra_info["speedup_aggregate"] = round(aggregate, 2)
    rows.append(["TOTAL", f"{total_tick:.2f}s", f"{total_event:.2f}s",
                 f"{aggregate:.1f}x"])
    print()
    print(format_table(["scenario", "tick", "event", "speedup"], rows))

    for scenario_name in SCENARIOS:
        tick_seconds, event_seconds = timings[scenario_name]
        speedup = tick_seconds / event_seconds
        assert speedup >= MIN_SCENARIO_SPEEDUP, (
            f"{scenario_name}: event engine only {speedup:.2f}x over tick "
            f"(need {MIN_SCENARIO_SPEEDUP}x)"
        )
    assert aggregate >= MIN_AGGREGATE_SPEEDUP, (
        f"aggregate speedup {aggregate:.2f}x below the {MIN_AGGREGATE_SPEEDUP}x "
        "tentpole floor"
    )


def test_bench_event_engine_suite(benchmark):
    """Gate anchor: the event engine's own wall time over the suite."""

    def run():
        total = 0
        for scenario_name in SCENARIOS:
            _, result = _run_engine(scenario_name, "event")
            total += len(result.records)
        return total

    records = benchmark.pedantic(run, rounds=2, iterations=1)
    assert records == len(SCENARIOS) * DURATION_MINUTES
    benchmark.extra_info["intervals_per_round"] = records
    if benchmark.stats.stats.mean > 0:
        benchmark.extra_info["intervals_per_sec"] = round(
            records / benchmark.stats.stats.mean
        )
