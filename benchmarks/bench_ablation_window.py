"""Ablation — causal-probability window length.

The paper fixes the history window at 60 minutes "which is configurable".
This ablation varies it: a very short window starves the confidence
fallback (noisy profiles), a very long one goes stale under hot-path
drift.  Run at DCA-5%, where the fallback to the long window is the
operative mechanism (RQ4).
"""

import pytest

from benchmarks.conftest import get_scenario, run_once
from repro.core.elasticity import DCAElasticityManager, DCAManagerConfig, detect_serialization_suspects
from repro.evalx.reporting import format_table
from repro.sim.engine import ClusterSimulator, DCABundle, SimulationConfig
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.patterns import ScaledPattern, paper_pattern

WINDOWS = (10.0, 60.0, 240.0)
DURATION = 300
RATE = 0.05


def _run_window(scenario, window_minutes, seed=7):
    bundle = DCABundle.create(
        scenario.app,
        sampling_rate=RATE,
        overhead_model=scenario.overhead_model,
        window_minutes=window_minutes,
        num_front_ends=scenario.num_front_ends,
        seed=seed,
    )
    low, high = scenario.magnitudes
    generator = WorkloadGenerator(
        ScaledPattern(paper_pattern, low, high), scenario.mix, scenario.classes, seed=seed
    )
    manager = DCAElasticityManager(
        profiler=bundle.profiler,
        machine=scenario.machine,
        config=DCAManagerConfig(sampling_rate=RATE),
        serialization_suspects=detect_serialization_suspects(scenario.app),
    )
    sim = ClusterSimulator(
        scenario.app,
        generator,
        dict(scenario.deployments),
        scenario.machine,
        manager,
        config=SimulationConfig(duration_minutes=DURATION),
        dca=bundle,
    )
    return sim.run()


def test_ablation_window_length(benchmark):
    scenario = get_scenario("hedwig")
    results = run_once(
        benchmark, lambda: {w: _run_window(scenario, w) for w in WINDOWS}
    )
    rows = [
        [f"{int(w)} min", f"{res.agility():.2f}", f"{res.sla_violation_percent():.2f}%"]
        for w, res in sorted(results.items())
    ]
    print()
    print(format_table(["window", "agility", "SLA violations"], rows))
    # All windows must produce a working manager (sanity floor/ceiling).
    for res in results.values():
        assert 0 < res.agility() < 50
    # The paper's 60-minute default is not dominated by the extremes.
    agility = {w: res.agility() for w, res in results.items()}
    assert agility[60.0] <= max(agility[10.0], agility[240.0]) * 1.05
