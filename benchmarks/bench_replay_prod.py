"""Production-config fast paths: replay over sharded/batched stores.

PR 7's event-engine benchmark measures the cutover on the plain store;
this one gates the configuration production deployments actually run —
``--shards 4 --batch-size 32 --engine event`` — now that eligibility
covers sharded/batched memory stores.  For each fault-free DCA scenario
the suite runs three ways: the fast path (cutover enabled), the same
config with the cutover disabled (convergence streak pushed out of
reach), and the tick oracle.  Both event runs must stay bit-identical
to tick, and the fast path must deliver at least a **3x aggregate**
wall-clock speedup over the no-cutover run (measured headroom ~13x on
the baseline machine).

The second benchmark prices the other fast path shipped alongside:
merging four per-worker ``topk`` profiler checkpoints (the
``--workers 4 --profiler-mode topk`` sweep path) must stay a
small-constant cost, far below one manager run.
"""

import gc
import random
import time

import repro.sim.events as events_mod
from benchmarks.conftest import run_once
from repro.apps.catalog import load_scenario
from repro.evalx.experiment import ExperimentConfig, MergedProfile, build_simulator
from repro.evalx.reporting import format_table
from repro.profiling.profiler import CausalPathProfiler
from repro.sim.engine import SimulationConfig
from repro.sim.parity import diff_results
from repro.telemetry import MetricsRegistry

SCENARIOS = ("marketcetera", "hedwig", "zookeeper")
MANAGER = "DCA-100%"
DURATION_MINUTES = 320
MAX_LIVE = 16
SEED = 7
NUM_SHARDS = 4
WRITE_BATCH_SIZE = 32

#: CI-gated floors (measured ~17x/10x/10x per scenario, ~13x aggregate).
MIN_AGGREGATE_SPEEDUP = 3.0
MIN_SCENARIO_SPEEDUP = 2.0


def _run_engine(scenario_name, engine):
    """Wall seconds + result + simulator for one production-config run."""
    sim_config = SimulationConfig(max_live_traces_per_class=MAX_LIVE)
    config = ExperimentConfig(
        duration_minutes=DURATION_MINUTES,
        seed=SEED,
        sim=sim_config,
        engine=engine,
        num_shards=NUM_SHARDS,
        write_batch_size=WRITE_BATCH_SIZE,
    )
    sim = build_simulator(
        load_scenario(scenario_name), MANAGER, config=config,
        registry=MetricsRegistry(),
    )
    gc.collect()
    start = time.perf_counter()
    result = sim.run()
    return time.perf_counter() - start, result, sim


def _run_without_cutover(scenario_name):
    """Same config, cutover disabled: the convergence streak is pushed
    out of reach, so every execution stays full-fidelity."""
    saved = events_mod.REPLAY_CONVERGENCE_STREAK
    events_mod.REPLAY_CONVERGENCE_STREAK = 10**9
    try:
        return _run_engine(scenario_name, "event")
    finally:
        events_mod.REPLAY_CONVERGENCE_STREAK = saved


def test_bench_replay_prod_speedup(benchmark):
    """Fast path vs no-cutover vs tick at shards=4/batch=32; parity per seed."""

    def measure():
        timings = {}
        for scenario_name in SCENARIOS:
            fast_seconds, fast_result, fast_sim = _run_engine(scenario_name, "event")
            assert fast_sim.event_runner.ingestor is not None
            assert fast_sim.event_runner.ingestor.replaying, (
                f"{scenario_name}: cutover never engaged on the fast-path config"
            )
            slow_seconds, slow_result, _ = _run_without_cutover(scenario_name)
            tick_seconds, tick_result, _ = _run_engine(scenario_name, "tick")
            diffs = diff_results(slow_result, fast_result)
            assert not diffs, f"{scenario_name}: cutover changed results: {diffs[:3]}"
            diffs = diff_results(tick_result, fast_result)
            assert not diffs, f"{scenario_name}: tick parity broken: {diffs[:3]}"
            timings[scenario_name] = (tick_seconds, slow_seconds, fast_seconds)
        return timings

    timings = run_once(benchmark, measure)

    rows = []
    total_slow = total_fast = 0.0
    for scenario_name in SCENARIOS:
        tick_seconds, slow_seconds, fast_seconds = timings[scenario_name]
        total_slow += slow_seconds
        total_fast += fast_seconds
        speedup = slow_seconds / fast_seconds
        benchmark.extra_info[f"tick_seconds_{scenario_name}"] = round(tick_seconds, 4)
        benchmark.extra_info[f"nocutover_seconds_{scenario_name}"] = round(
            slow_seconds, 4
        )
        benchmark.extra_info[f"replay_seconds_{scenario_name}"] = round(
            fast_seconds, 4
        )
        benchmark.extra_info[f"speedup_{scenario_name}"] = round(speedup, 2)
        rows.append(
            [scenario_name, f"{tick_seconds:.2f}s", f"{slow_seconds:.2f}s",
             f"{fast_seconds:.2f}s", f"{speedup:.1f}x"]
        )
    aggregate = total_slow / total_fast
    benchmark.extra_info["speedup_aggregate"] = round(aggregate, 2)
    rows.append(["TOTAL", "", f"{total_slow:.2f}s", f"{total_fast:.2f}s",
                 f"{aggregate:.1f}x"])
    print()
    print(format_table(
        ["scenario", "tick", "no-cutover", "replay", "speedup"], rows
    ))

    for scenario_name in SCENARIOS:
        _, slow_seconds, fast_seconds = timings[scenario_name]
        speedup = slow_seconds / fast_seconds
        assert speedup >= MIN_SCENARIO_SPEEDUP, (
            f"{scenario_name}: replay only {speedup:.2f}x over no-cutover "
            f"(need {MIN_SCENARIO_SPEEDUP}x)"
        )
    assert aggregate >= MIN_AGGREGATE_SPEEDUP, (
        f"aggregate speedup {aggregate:.2f}x below the {MIN_AGGREGATE_SPEEDUP}x "
        "production-config floor"
    )


def test_bench_replay_prod_suite(benchmark):
    """Gate anchor: fast-path wall time over the production-config suite."""

    def run():
        total = 0
        for scenario_name in SCENARIOS:
            _, result, _ = _run_engine(scenario_name, "event")
            total += len(result.records)
        return total

    records = benchmark.pedantic(run, rounds=2, iterations=1)
    assert records == len(SCENARIOS) * DURATION_MINUTES
    benchmark.extra_info["intervals_per_round"] = records
    if benchmark.stats.stats.mean > 0:
        benchmark.extra_info["intervals_per_sec"] = round(
            records / benchmark.stats.stats.mean
        )


def _worker_checkpoints(num_workers=4, paths=400, records=20_000):
    """Per-worker ``topk`` profiler checkpoints over one Zipf stream."""
    from repro.core.paths import PathSignature

    rng = random.Random(11)
    signatures = [
        PathSignature(f"req{i % 8}", (("fe", f"m{i}", "svc"), ("svc", "q", "db")))
        for i in range(paths)
    ]
    workers = [
        CausalPathProfiler(
            {}, registry=MetricsRegistry(), mode="topk", topk=128
        )
        for _ in range(num_workers)
    ]
    for j in range(records):
        # rank ~ Zipf: low indices dominate, tail spreads wide.
        idx = min(int(rng.paretovariate(1.1)) - 1, paths - 1)
        workers[j % num_workers].record(signatures[idx], j * 0.01)
    return [worker.to_json() for worker in workers]


def test_bench_sketch_merge_overhead(benchmark):
    """Merging 4 per-worker topk checkpoints (the --workers sweep path)."""
    checkpoints = _worker_checkpoints()

    def merge_all():
        profile = MergedProfile()
        for i, checkpoint in enumerate(checkpoints):
            profile.add(f"worker-{i}", checkpoint)
        return profile

    profile = benchmark.pedantic(merge_all, rounds=5, iterations=1)
    assert profile.profiler is not None
    assert profile.profiler.mode == "topk"
    assert len(profile.by_manager) == len(checkpoints)
    benchmark.extra_info["checkpoints_merged"] = len(checkpoints)
    benchmark.extra_info["merge_seconds_mean"] = round(
        benchmark.stats.stats.mean, 6
    )
