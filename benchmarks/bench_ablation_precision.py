"""Ablation — direct vs temporal causality precision (Section III / Fig. 3).

Quantifies the paper's core claim: temporal ("happens-before") causality
mis-attributes messages under concurrency, while direct causality (DCA's
dynamic control/data flow) is exact.  Precision is measured as the
fraction of attributed parents that are true causes, across increasing
concurrency levels.
"""

import pytest

from benchmarks.conftest import run_once
from repro.apps import ecommerce
from repro.core.dca import analyze_application
from repro.evalx.reporting import format_table
from repro.sim.runtime import ApplicationRuntime
from repro.tracing.spans import TemporalSpanTracer


def _temporal_precision(num_concurrent: int) -> float:
    """Fig. 3 generalised: N interleaved requests at one component."""
    tracer = TemporalSpanTracer(attribution_window_ms=50.0)
    spans = []
    for i in range(num_concurrent):
        spans.append(
            tracer.record_receive("payment", f"req{i}", 100.0 + i, 30.0, trace_root=i)
        )
    for i, span in enumerate(spans):
        tracer.record_emit(
            "payment",
            f"resp{i}",
            130.0 + i,
            5.0,
            "frontend",
            trace_root=i,
            true_parent=span.span_id,
        )
    return tracer.attribution_precision()


def _direct_precision(num_concurrent: int) -> float:
    """The same interleaving under DCA provenance: always exact."""
    app = ecommerce.build()
    runtime = ApplicationRuntime(app, dca_result=analyze_application(app))
    simple, purchase = ecommerce.request_classes()
    correct = 0
    attributed = 0
    for i in range(num_concurrent):
        cls = purchase if i % 2 else simple
        trace = runtime.execute_request(cls, sampled=True)
        by_uid = {m.uid: m for m in trace.messages}
        for m in trace.messages:
            for cause in m.cause_uids:
                attributed += 1
                cause_msg = by_uid.get(cause)
                # A true cause belongs to the same request's causal tree.
                if cause_msg is not None and (
                    cause_msg.root_uid == m.root_uid or cause_msg.uid == m.root_uid
                ):
                    correct += 1
    return correct / attributed if attributed else 1.0


def test_ablation_precision_vs_concurrency(benchmark):
    levels = (1, 2, 4, 8, 16)

    def sweep():
        return {
            n: (_temporal_precision(n), _direct_precision(n)) for n in levels
        }

    results = run_once(benchmark, sweep)
    rows = [
        [str(n), f"{temporal:.3f}", f"{direct:.3f}"]
        for n, (temporal, direct) in sorted(results.items())
    ]
    print()
    print(format_table(["concurrent requests", "temporal precision", "direct precision"], rows))

    # Direct causality is exact at every concurrency level.
    assert all(direct == 1.0 for _, direct in results.values())
    # Temporal causality is exact only when isolated, and degrades.
    assert results[1][0] == 1.0
    assert results[16][0] < results[2][0] <= 1.0
    assert results[16][0] < 0.3


def test_temporal_false_positive_rate_grows(benchmark):
    precisions = run_once(
        benchmark, lambda: [_temporal_precision(n) for n in (2, 4, 8, 16, 32)]
    )
    assert all(a >= b for a, b in zip(precisions, precisions[1:]))


def _vector_clock_precision(num_concurrent: int) -> float:
    """Attribution precision under pure vector-clock happens-before.

    Without wall-clock windows, *every* receive that happens-before a
    response is a candidate cause — the paper's hypothesis that "the use
    of logical clocks will only further degrade the elasticity (compared
    to HTrace)".
    """
    from repro.tracing.clocks import VectorClock

    server = VectorClock("srv")
    receive_stamps = []
    clients = [VectorClock(f"c{i}") for i in range(num_concurrent)]
    for client in clients:
        ts = client.send()
        receive_stamps.append(ts)
        server.receive(ts)
    correct = 0
    attributed = 0
    for i in range(num_concurrent):
        response_ts = server.send()
        for j, recv_ts in enumerate(receive_stamps):
            if recv_ts.happens_before(response_ts):
                attributed += 1
                if j == i:
                    correct += 1
    return correct / attributed if attributed else 1.0


def _temporal_precision_spread(num_concurrent: int, gap_ms: float = 40.0) -> float:
    """Span precision when requests are spread out in time.

    Unlike the fully-overlapped Fig. 3 worst case, realistic arrivals are
    staggered; the span tracer's attribution window then bounds the
    candidate-parent set, which is exactly the advantage wall-clock spans
    have over unbounded happens-before.
    """
    tracer = TemporalSpanTracer(attribution_window_ms=50.0)
    spans = []
    for i in range(num_concurrent):
        spans.append(
            tracer.record_receive("payment", f"req{i}", i * gap_ms, 20.0, trace_root=i)
        )
    for i, span in enumerate(spans):
        tracer.record_emit(
            "payment",
            f"resp{i}",
            i * gap_ms + 25.0,
            5.0,
            "frontend",
            trace_root=i,
            true_parent=span.span_id,
        )
    return tracer.attribution_precision()


def test_logical_clocks_worse_than_spans(benchmark):
    """Section V-D: windowed spans (HTrace) beat raw happens-before, and
    both lose to direct causality — on staggered (realistic) arrivals."""

    def sweep():
        out = {}
        for n in (2, 4, 8, 16):
            out[n] = (
                _direct_precision(n),
                _temporal_precision_spread(n),
                _vector_clock_precision(n),
            )
        return out

    results = run_once(benchmark, sweep)
    rows = [
        [str(n), f"{d:.3f}", f"{t:.3f}", f"{v:.3f}"]
        for n, (d, t, v) in sorted(results.items())
    ]
    print()
    print(
        format_table(
            ["concurrent", "direct (DCA)", "temporal spans (HTrace)", "vector clocks"],
            rows,
        )
    )
    for n, (direct, spans, clocks) in results.items():
        assert direct == 1.0
        assert clocks <= spans + 1e-9, f"n={n}: clocks should not beat windowed spans"
    # At scale the window bound is a strict advantage …
    assert results[16][2] < results[16][1]
    # … and vector clocks degrade strictly with concurrency.
    precisions = [results[n][2] for n in (2, 4, 8, 16)]
    assert all(a > b for a, b in zip(precisions, precisions[1:]))
