"""Fig. 5 — runtime overhead of DCA at 100/5/10/20% sampling.

Regenerates, for Marketcetera and Hedwig (plus the companion-TR
Zookeeper), the paper's overhead table: mean overhead and the range
containing 95% of per-minute measurements over the 450-minute Fig. 7 run.

Paper values (mean): Marketcetera 37.8 / 2.89 / 5.76 / 11.36 %,
Hedwig 27.5 / 3.38 / 5.39 / 9.7 %.
"""

import pytest

from benchmarks.conftest import get_scenario, run_once
from repro.evalx.overhead import fig5_measurements
from repro.evalx.reporting import fig5_table

#: Sampling levels of the paper's Fig. 5, in table order.
RATES = (1.0, 0.05, 0.10, 0.20)

#: Shape bands derived from the paper (DESIGN.md §3).
BANDS = {
    1.0: (0.22, 0.45),
    0.05: (0.02, 0.045),
    0.10: (0.045, 0.075),
    0.20: (0.07, 0.14),
}


@pytest.mark.parametrize("app_name", ["marketcetera", "hedwig", "zookeeper"])
def test_fig5_overhead_table(benchmark, app_name):
    scenario = get_scenario(app_name)
    measurements = run_once(benchmark, lambda: fig5_measurements(scenario))
    print()
    print(fig5_table({app_name: measurements}))
    for rate, (lo, hi) in BANDS.items():
        measured = measurements[rate].mean
        assert lo <= measured <= hi, (
            f"{app_name} DCA-{int(rate * 100)}% overhead {measured:.3f} outside paper band [{lo}, {hi}]"
        )


def test_fig5_overhead_ordering(benchmark):
    """Sampling monotonicity: more sampling, more overhead; and 100% is far
    below 20 × the 5% overhead (amortisation, Section IV-D)."""
    scenario = get_scenario("marketcetera")
    measurements = run_once(benchmark, lambda: fig5_measurements(scenario))
    m = {rate: meas.mean for rate, meas in measurements.items()}
    assert m[0.05] < m[0.10] < m[0.20] < m[1.0]
    assert m[1.0] < 20 * m[0.05] * 0.9


def test_fig5_marketcetera_exceeds_hedwig_at_full_sampling(benchmark):
    """The paper's table: Marketcetera's 100% overhead (37.8%) exceeds
    Hedwig's (27.5%) — the trading platform has denser tracked state."""

    def measure():
        return (
            fig5_measurements(get_scenario("marketcetera"), rates=(1.0,)),
            fig5_measurements(get_scenario("hedwig"), rates=(1.0,)),
        )

    trading, pubsub = run_once(benchmark, measure)
    assert trading[1.0].mean > pubsub[1.0].mean
