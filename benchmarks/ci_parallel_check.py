#!/usr/bin/env python3
"""CI smoke + wall-clock budget for the parallel experiment runner.

Runs every manager over one scenario through
``run_all_managers(..., workers=N)`` — the process-pool fan-out the
``--workers`` CLI flag exposes — with the sharded, batched store
configuration, and fails if the whole sweep blows a wall-clock budget.
The budget is deliberately loose (shared CI runners are noisy); the
assertion exists to catch the parallel path degrading to something
pathological (serialised workers, per-worker re-imports in a loop,
snapshot-merge blowups), not to benchmark it — the regression gate in
``check_regression.py`` owns fine-grained timing.

Usage::

    python benchmarks/ci_parallel_check.py [--scenario hedwig]
        [--workers 4] [--duration 120] [--budget-seconds 120]
"""

import argparse
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.apps.catalog import load_scenario  # noqa: E402
from repro.evalx.experiment import (  # noqa: E402
    MANAGER_NAMES,
    ExperimentConfig,
    run_all_managers,
)
from repro.telemetry import MetricsRegistry  # noqa: E402


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenario", default="hedwig")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--duration", type=int, default=120)
    parser.add_argument("--budget-seconds", type=float, default=120.0)
    args = parser.parse_args(argv)

    scenario = load_scenario(args.scenario)
    config = ExperimentConfig(
        duration_minutes=args.duration, num_shards=4, write_batch_size=32
    )
    registry = MetricsRegistry()
    start = time.perf_counter()
    results = run_all_managers(
        scenario, config=config, workers=args.workers, registry=registry
    )
    elapsed = time.perf_counter() - start

    missing = set(MANAGER_NAMES) - set(results)
    if missing:
        print(f"FAIL: managers missing from results: {sorted(missing)}")
        return 1
    for name in MANAGER_NAMES:
        result = results[name]
        print(
            f"  {name:<12} agility={result.agility():8.2f} "
            f"sla_violations={result.sla_violation_percent():6.2f}%"
        )
    paths = registry.counter("tracker.paths_completed").value
    if paths <= 0:
        print("FAIL: merged worker telemetry reports no completed paths")
        return 1
    print(
        f"{len(results)} managers x {args.duration} min on {args.scenario!r} "
        f"with {args.workers} workers: {elapsed:.1f}s "
        f"(budget {args.budget_seconds:.0f}s), {paths:.0f} paths completed"
    )
    if elapsed > args.budget_seconds:
        print(f"FAIL: wall clock {elapsed:.1f}s exceeds budget")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
