"""Ablation — graph-store indexing (the paper's O(1)-hop claim).

"Indexing the elements … by the unique identifiers of messages makes BFS
extremely efficient … the time complexity of determining the causal
graph induced by a message M is O(|causal graph(M)|)."

These microbenchmarks exercise the uid hash index directly: node lookup,
edge insertion, BFS extraction at two graph sizes (near-linear scaling is
the observable consequence of O(1) hops), and partitioning overhead.
"""

import pytest

from repro.graphstore.query import causal_graph_bfs
from repro.graphstore.store import GraphStore
from repro.lang.ir import CLIENT, EXTERNAL
from repro.lang.message import Message, MessageUid


def _linear_chain(store, length, start_seq=1):
    """Insert a root→…→response chain of ``length`` messages."""
    root = Message(MessageUid("h", 1, start_seq), "req", EXTERNAL, "C0")
    store.add_message(root)
    prev = root
    for i in range(1, length):
        dest = CLIENT if i == length - 1 else f"C{i}"
        msg = Message(
            MessageUid("h", 1, start_seq + i),
            f"m{i}",
            f"C{i - 1}",
            dest,
            cause_uids=frozenset({prev.uid}),
            root_uid=root.uid,
        )
        store.add_message(msg)
        prev = msg
    return root


def test_bench_uid_index_lookup(benchmark):
    store = GraphStore()
    root = _linear_chain(store, 1000)
    uid = MessageUid("h", 1, 500)

    result = benchmark(lambda: store.get_node(uid))
    assert result is not None


def test_bench_edge_insertion(benchmark):
    def insert_chain():
        store = GraphStore()
        _linear_chain(store, 500)
        return store

    store = benchmark(insert_chain)
    assert store.edge_count == 499


@pytest.mark.parametrize("size", [100, 1000])
def test_bench_bfs_scales_with_graph_size(benchmark, size):
    store = GraphStore()
    root = _linear_chain(store, size)

    result = benchmark(lambda: causal_graph_bfs(store, root.uid))
    assert len(result.nodes) == size
    assert result.complete


def test_bfs_work_is_linear_in_graph_size(benchmark):
    """The index-lookup count (the store's unit of work) grows linearly
    with causal-graph size — the measurable form of the O(1)-hop claim."""

    def measure():
        work = {}
        for size in (200, 400, 800):
            store = GraphStore()
            root = _linear_chain(store, size)
            before = store.index_lookups
            causal_graph_bfs(store, root.uid)
            work[size] = store.index_lookups - before
        return work

    work = benchmark.pedantic(measure, rounds=1, iterations=1)
    ratio_1 = work[400] / work[200]
    ratio_2 = work[800] / work[400]
    assert 1.8 < ratio_1 < 2.2
    assert 1.8 < ratio_2 < 2.2


@pytest.mark.parametrize("partitions", [1, 8])
def test_bench_partitioning_overhead(benchmark, partitions):
    """More partitions change data placement, not asymptotics."""
    store = GraphStore(num_partitions=partitions)
    root = _linear_chain(store, 500)

    result = benchmark(lambda: causal_graph_bfs(store, root.uid))
    assert result.complete
