"""Microbenchmarks of the core machinery (genuine pytest-benchmark timings).

These are not paper figures; they keep the reproduction honest about its
own costs: static analysis time, instrumented vs plain interpretation
throughput, path enumeration, and profiler recording.
"""

import pytest

from benchmarks.conftest import get_scenario
from repro.core.dca import analyze_application
from repro.core.paths import enumerate_causal_paths, signature_from_edges
from repro.lang.ir import CLIENT, EXTERNAL
from repro.profiling.profiler import CausalPathProfiler
from repro.sim.runtime import ApplicationRuntime


def test_bench_dca_static_analysis(benchmark):
    app = get_scenario("marketcetera").app
    result = benchmark(lambda: analyze_application(app))
    assert result.total_tracked_vars() > 0


def test_bench_path_enumeration(benchmark):
    app = get_scenario("marketcetera").app
    paths = benchmark(lambda: enumerate_causal_paths(app))
    assert sum(len(v) for v in paths.values()) >= 4


def test_bench_plain_interpretation(benchmark):
    scenario = get_scenario("marketcetera")
    runtime = ApplicationRuntime(scenario.app)
    request = scenario.request_class("order_submit")

    trace = benchmark(lambda: runtime.execute_request(request, sampled=False))
    assert trace.responses == 1


def test_bench_instrumented_interpretation(benchmark):
    scenario = get_scenario("marketcetera")
    runtime = ApplicationRuntime(
        scenario.app,
        dca_result=analyze_application(scenario.app),
        overhead_model=scenario.overhead_model,
        sampling_rate=1.0,
    )
    request = scenario.request_class("order_submit")

    trace = benchmark(lambda: runtime.execute_request(request, sampled=True))
    assert sum(trace.component_instr_ops.values()) > 0


def test_bench_profiler_recording(benchmark):
    sig = signature_from_edges(
        "go", [(EXTERNAL, "go", "A"), ("A", "x", "B"), ("B", "done", CLIENT)]
    )
    profiler = CausalPathProfiler({"go": [sig]})

    def record_minute():
        for i in range(100):
            profiler.record(sig, float(i % 60))
        return profiler.counts(59.0)

    counts = benchmark(record_minute)
    assert sum(counts.values()) > 0
