#!/usr/bin/env python
"""Benchmark regression gate: fail CI when throughput drops too far.

Runs the core microbenchmarks (``bench_micro_core.py``,
``bench_ablation_graphstore.py`` and ``bench_micro_tracker.py``, the
end-to-end tracker throughput suite) under pytest-benchmark, writes the
``BENCH_ci.json`` artifact (each result carries a telemetry snapshot in
``extra_info``), and compares per-benchmark mean times against the
committed ``benchmarks/baseline.json``.  A benchmark whose throughput
(1/mean) falls more than ``--threshold`` (default 25%) below baseline
fails the gate.

Because CI runners and the machine that produced the baseline differ in
raw speed, the gate first measures a fixed pure-Python spin workload on
the current machine and scales the baseline by the ratio to the
baseline machine's measurement (clamped, so calibration can shrink but
never erase a real regression).

Usage::

    python benchmarks/check_regression.py --run            # CI entry point
    python benchmarks/check_regression.py --results BENCH_ci.json
    python benchmarks/check_regression.py --run --update-baseline
    python benchmarks/check_regression.py --results BENCH_ci.json \
        --synthetic-slowdown 0.5                           # gate self-test

Exit status: 0 when every benchmark passes, 1 on regression or missing
benchmarks, 2 on usage/runtime errors.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = Path(__file__).resolve().parent / "baseline.json"
RESULTS_PATH = REPO_ROOT / "BENCH_ci.json"
#: Sidecar caching the machine-speed calibration so a CI job (which may
#: invoke the gate several times) only pays the spin workload once.
CALIBRATION_CACHE_PATH = Path(__file__).resolve().parent / ".calibration_cache.json"
#: Cached calibrations older than this are re-measured: machine speed is
#: stable within one CI job, not across days of local development.
CALIBRATION_CACHE_TTL_SECONDS = 6 * 3600.0

#: Benchmark modules (or single pytest node ids) the gate runs — kept
#: short: the CI job must finish in minutes, not re-run the 450-minute
#: figure suites.  The fault-matrix entry is a node id on purpose: its
#: module also hosts the multi-seed Fig. 8 sweep, which is far too slow
#: for the gate.
BENCH_FILES = (
    "benchmarks/bench_micro_core.py",
    "benchmarks/bench_ablation_graphstore.py",
    "benchmarks/bench_micro_tracker.py",
    "benchmarks/bench_shard_pipeline.py",
    "benchmarks/bench_event_engine.py",
    "benchmarks/bench_robustness_seeds.py::test_bench_fault_matrix_graceful_degradation",
    "benchmarks/bench_profiler_sketch.py",
    "benchmarks/bench_store_backend.py",
    "benchmarks/bench_replay_prod.py",
)

#: Calibration can scale the allowance by at most this factor either
#: way; beyond that the machines are too different to compare and the
#: clamp keeps a real regression from hiding behind "slow runner".
CALIBRATION_CLAMP = 4.0

BASELINE_SCHEMA = 1


def calibrate(loops: int = 2_000_000, repeats: int = 3) -> float:
    """Seconds for a fixed pure-Python spin workload (best of ``repeats``)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        acc = 0
        for i in range(loops):
            acc += i & 7
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best


def cached_calibration(
    cache_path: Path = CALIBRATION_CACHE_PATH,
    ttl_seconds: float = CALIBRATION_CACHE_TTL_SECONDS,
) -> float:
    """Machine calibration, measured at most once per ``ttl_seconds``.

    Returns the cached measurement when the sidecar is present, well
    formed and fresh; otherwise measures via :func:`calibrate` and
    rewrites the sidecar.  A corrupt or unwritable sidecar silently
    degrades to measuring every time — the gate must never fail because
    of its own cache.
    """
    try:
        with open(cache_path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        seconds = float(payload["calibration_seconds"])
        measured_at = float(payload["measured_at"])
        if seconds > 0 and 0 <= time.time() - measured_at <= ttl_seconds:
            return seconds
    except (OSError, KeyError, TypeError, ValueError):
        pass
    seconds = calibrate()
    try:
        with open(cache_path, "w", encoding="utf-8") as fh:
            json.dump(
                {"calibration_seconds": seconds, "measured_at": time.time()},
                fh,
                indent=2,
                sort_keys=True,
            )
            fh.write("\n")
    except OSError:
        pass
    return seconds


def run_benchmarks(results_path: Path) -> None:
    """Execute the gate's benchmark files, writing pytest-benchmark JSON."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    cmd = [
        sys.executable,
        "-m",
        "pytest",
        *BENCH_FILES,
        "--benchmark-only",
        f"--benchmark-json={results_path}",
        "-q",
        "-p",
        "no:cacheprovider",
    ]
    proc = subprocess.run(cmd, cwd=REPO_ROOT, env=env)
    if proc.returncode != 0:
        raise RuntimeError(f"benchmark run failed with exit code {proc.returncode}")


def load_means(results_path: Path) -> Dict[str, float]:
    """``fullname -> mean seconds`` from a pytest-benchmark JSON file.

    Raises :class:`RuntimeError` with an actionable message (no
    traceback reaches the CI log) when the file is missing, is not
    valid JSON, or contains no benchmark entries — the three ways an
    interrupted or misconfigured ``--run`` typically manifests.
    """
    if not results_path.exists():
        raise RuntimeError(
            f"benchmark results file not found: {results_path} "
            "(run the gate with --run, or point --results at an existing "
            "pytest-benchmark JSON file)"
        )
    try:
        with open(results_path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except json.JSONDecodeError as exc:
        raise RuntimeError(
            f"benchmark results file {results_path} is not valid JSON ({exc}); "
            "the benchmark run was probably interrupted — re-run with --run"
        ) from exc
    means: Dict[str, float] = {}
    for bench in payload.get("benchmarks", []):
        means[bench["fullname"]] = float(bench["stats"]["mean"])
    if not means:
        raise RuntimeError(
            f"no benchmark results found in {results_path}; the file exists "
            "but holds an empty 'benchmarks' list — check the pytest "
            "--benchmark-only selection"
        )
    return means


def write_baseline(
    means: Dict[str, float], calibration_seconds: float, path: Path = BASELINE_PATH
) -> None:
    payload = {
        "schema": BASELINE_SCHEMA,
        "calibration_seconds": calibration_seconds,
        "benchmarks": {name: means[name] for name in sorted(means)},
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {path} ({len(means)} benchmarks)")


def check(
    baseline: Dict[str, object],
    means: Dict[str, float],
    threshold: float,
    calibration_factor: float,
) -> List[str]:
    """Return failure messages (empty when the gate passes)."""
    failures: List[str] = []
    base_means: Dict[str, float] = baseline["benchmarks"]  # type: ignore[assignment]
    print(
        f"{'benchmark':<70} {'base ms':>10} {'now ms':>10} {'ratio':>7}  verdict"
    )
    for name in sorted(base_means):
        base = float(base_means[name]) * calibration_factor
        current = means.get(name)
        short = name.split("::")[-1]
        if current is None:
            failures.append(f"missing benchmark: {name}")
            print(f"{short:<70} {1000 * base:>10.4f} {'—':>10} {'—':>7}  MISSING")
            continue
        # Throughput is 1/mean: a drop of more than `threshold` means
        # current_mean > base_mean / (1 - threshold).
        allowed = base / (1.0 - threshold)
        ratio = current / base if base > 0 else float("inf")
        verdict = "ok" if current <= allowed else "REGRESSION"
        print(
            f"{short:<70} {1000 * base:>10.4f} {1000 * current:>10.4f} {ratio:>7.2f}  {verdict}"
        )
        if current > allowed:
            failures.append(
                f"{name}: mean {current * 1e3:.4f} ms vs calibrated baseline "
                f"{base * 1e3:.4f} ms (throughput drop "
                f"{100 * (1 - base / current):.1f}% > {100 * threshold:.0f}%)"
            )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--run", action="store_true", help="run the benchmarks before checking"
    )
    parser.add_argument(
        "--results", type=Path, default=RESULTS_PATH,
        help="pytest-benchmark JSON to check (written by --run)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=BASELINE_PATH, help="committed baseline file"
    )
    parser.add_argument(
        "--threshold", type=float, default=0.25,
        help="maximum tolerated fractional throughput drop (default 0.25)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from the current results instead of gating",
    )
    parser.add_argument(
        "--synthetic-slowdown", type=float, default=0.0, metavar="FRACTION",
        help="pretend throughput dropped by FRACTION (gate self-test)",
    )
    parser.add_argument(
        "--no-calibration", "--no-calibrate", action="store_true",
        dest="no_calibration",
        help="compare raw times without machine-speed calibration "
        "(skips the spin workload entirely)",
    )
    parser.add_argument(
        "--calibration-cache", type=Path, default=CALIBRATION_CACHE_PATH,
        help="sidecar caching the machine calibration across gate "
        "invocations within one CI job",
    )
    args = parser.parse_args(argv)

    if not 0.0 < args.threshold < 1.0:
        print(f"error: threshold must be in (0, 1), got {args.threshold}", file=sys.stderr)
        return 2
    if not 0.0 <= args.synthetic_slowdown < 1.0:
        print("error: synthetic slowdown must be in [0, 1)", file=sys.stderr)
        return 2

    try:
        if args.run:
            run_benchmarks(args.results)
        means = load_means(args.results)
    except (OSError, RuntimeError, KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.update_baseline:
        # The committed baseline anchors every future comparison, so it
        # always gets a fresh measurement (and refreshes the cache).
        calibration_now = calibrate()
        try:
            with open(args.calibration_cache, "w", encoding="utf-8") as fh:
                json.dump(
                    {"calibration_seconds": calibration_now, "measured_at": time.time()},
                    fh, indent=2, sort_keys=True,
                )
                fh.write("\n")
        except OSError:
            pass
        write_baseline(means, calibration_now, args.baseline)
        return 0

    try:
        with open(args.baseline, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
    except OSError as exc:
        print(f"error: cannot read baseline: {exc}", file=sys.stderr)
        return 2
    if baseline.get("schema") != BASELINE_SCHEMA:
        print(f"error: unsupported baseline schema {baseline.get('schema')}", file=sys.stderr)
        return 2

    factor = 1.0
    if args.no_calibration:
        print("calibration: disabled (--no-calibration), factor 1.000")
    else:
        calibration_now = cached_calibration(args.calibration_cache)
        base_cal = float(baseline.get("calibration_seconds", 0.0))
        if base_cal > 0:
            factor = calibration_now / base_cal
            factor = max(1.0 / CALIBRATION_CLAMP, min(CALIBRATION_CLAMP, factor))
        print(
            f"calibration: baseline {base_cal:.4f}s, "
            f"here {calibration_now:.4f}s, factor {factor:.3f}"
        )

    if args.synthetic_slowdown > 0:
        scale = 1.0 / (1.0 - args.synthetic_slowdown)
        means = {name: mean * scale for name, mean in means.items()}
        print(
            f"synthetic slowdown: scaling every mean by {scale:.2f}x "
            f"({100 * args.synthetic_slowdown:.0f}% throughput drop)"
        )

    failures = check(baseline, means, args.threshold, factor)
    if failures:
        print(f"\nFAIL: {len(failures)} benchmark(s) regressed", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nOK: all {len(baseline['benchmarks'])} benchmarks within "
          f"{100 * args.threshold:.0f}% of baseline throughput")
    return 0


if __name__ == "__main__":
    sys.exit(main())
