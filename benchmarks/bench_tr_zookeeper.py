"""Companion-TR experiment — Zookeeper under all seven managers.

The paper defers the Zookeeper results to its technical report; this
bench regenerates the same table for our Zookeeper model, including the
Section II-C concurrency finding: the quorum log is a serialised
bottleneck, DCA's structural rule refuses to scale it, and utilisation-
driven CloudWatch pours machines into it for no benefit.
"""

import pytest

from benchmarks.conftest import get_full_results, get_scenario, run_once
from repro.core.elasticity import detect_serialization_suspects
from repro.evalx.reporting import fig8_table, sla_table


def test_tr_zookeeper_agility_table(benchmark):
    results = run_once(benchmark, lambda: get_full_results("zookeeper"))
    print()
    print(fig8_table({"zookeeper": results}))
    print(sla_table({"zookeeper": results}))
    agility = {name: res.agility() for name, res in results.items()}
    # Headline orderings (the 5%/10% pair is within noise on this app).
    assert agility["DCA-10%"] < agility["DCA-20%"]
    assert agility["DCA-5%"] < agility["DCA-20%"]
    assert agility["DCA-20%"] < agility["ElasticRMI"]
    assert agility["ElasticRMI"] < agility["DCA-100%"]
    assert agility["DCA-100%"] < agility["HTrace+CW"]
    assert agility["HTrace+CW"] < agility["CloudWatch"]


def test_tr_quorum_log_structural_detection(benchmark):
    scenario = get_scenario("zookeeper")
    suspects = run_once(benchmark, lambda: detect_serialization_suspects(scenario.app))
    assert suspects == {"quorum-log"}


def test_tr_dca_does_not_overscale_quorum_log(benchmark):
    """Section II-C: 'elastic scaling of said component can be prevented'.
    DCA keeps the quorum log at its cap; CloudWatch wastes machines on it."""
    results = run_once(benchmark, lambda: get_full_results("zookeeper"))
    serial_cap = get_scenario("zookeeper").deployments["quorum-log"].serial_limit

    def mean_provisioned(result, comp):
        values = [r.components[comp].provisioned_nodes for r in result.records]
        return sum(values) / len(values)

    dca_nodes = mean_provisioned(results["DCA-10%"], "quorum-log")
    cw_nodes = mean_provisioned(results["CloudWatch"], "quorum-log")
    assert dca_nodes <= serial_cap + 1
    assert cw_nodes > dca_nodes * 1.5


def test_tr_write_surge_stresses_leader_not_readers(benchmark):
    """During the write-heavy phase the leader tier's requirement rises
    while the replica readers' falls — the per-path precision DCA needs."""
    results = run_once(benchmark, lambda: get_full_results("zookeeper"))
    records = results["DCA-10%"].records

    def mean_req(comp, lo, hi):
        vals = [r.components[comp].req_min_nodes for r in records[lo:hi]]
        return sum(vals) / len(vals)

    # Phase anchors: read-heavy around t∈[0,50), write-heavy around [140,210).
    assert mean_req("leader", 140, 210) > mean_req("leader", 0, 50)
    read_share_early = mean_req("replica-reader", 0, 50)
    read_share_surge = mean_req("replica-reader", 140, 210)
    leader_growth = mean_req("leader", 140, 210) / max(1.0, mean_req("leader", 0, 50))
    reader_growth = read_share_surge / max(1.0, read_share_early)
    assert leader_growth > reader_growth
