"""Store-backend ingest cost: the append-only log vs the memory default.

The log backend journals every mutation as a crc32-framed record, so its
ingest cost rides on the batched write pipeline's amortisation: batch
handoff buffers frames, and the write syscall lands once per pipeline
drain (plus the backend's byte-bounded auto-flush).  The CI-gated claim:
at the production configuration (four shards, ``--batch-size 32``) the
log backend stays within :data:`MAX_LOG_SLOWDOWN` (1.5x) of memory
ingest.  The ``fsync="flush"`` column is reported ungated — syncing
every drain is a durability choice, not an ingest-path property.

Two plain benchmarks (log-backend batched ingest, log recovery replay)
feed the regression gate with stable single-config timings alongside
the ratio sweep.
"""

import gc
import tempfile
import time

from benchmarks.bench_micro_tracker import _chain_requests
from benchmarks.conftest import run_once
from repro.evalx.reporting import format_table
from repro.graphstore import BatchedWritePipeline, ShardedGraphStore
from repro.graphstore.backend import LogBackend, shard_backends
from repro.graphstore.store import GraphStore
from repro.telemetry import MetricsRegistry

NUM_SHARDS = 4
BATCH_SIZE = 32
#: CI-gated ceiling: log-backend batched ingest must stay within this
#: factor of the memory backend (measured headroom is ~1.40-1.45x).
MAX_LOG_SLOWDOWN = 1.5
#: The measured configurations: (label, backend kind, fsync policy).
CONFIGS = (
    ("memory", "memory", None),
    ("log", "log", "close"),
    ("log+fsync", "log", "flush"),
)


def _stream(num_requests=400, depth=25):
    batches = _chain_requests(num_requests=num_requests, depth=depth)
    return [message for batch in batches for message in batch]


def _build_pipeline(kind, directory, fsync):
    registry = MetricsRegistry()
    if kind == "memory":
        store = ShardedGraphStore(num_shards=NUM_SHARDS, registry=registry)
    else:
        store = ShardedGraphStore(
            num_shards=NUM_SHARDS,
            registry=registry,
            backends=shard_backends(
                "log", NUM_SHARDS, directory, registry=registry, fsync=fsync
            ),
        )
    return BatchedWritePipeline(store, batch_size=BATCH_SIZE, registry=registry)


def _ingest_seconds(messages, kind, fsync):
    """Wall time to push ``messages`` through one fresh pipeline.

    Collection runs before (not during) the timed region: the gate
    compares per-message costs a microsecond apart, and a GC pause
    landing inside one configuration's run would swamp them.  The
    log directory is created outside the timed region; ``close()``
    (rotation fsync, file handles) runs after it.
    """
    with tempfile.TemporaryDirectory() as directory:
        pipeline = _build_pipeline(kind, directory, fsync)
        submit = pipeline.submit
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            for message in messages:
                submit(message)
            pipeline.flush()
            seconds = time.perf_counter() - start
        finally:
            gc.enable()
        pipeline.store.close()
    return seconds


def test_bench_backend_ingest_ratio(benchmark, repeats=5):
    """Memory vs log (both fsync policies) at four shards, batch 32."""
    messages = _stream()

    def measure():
        # Every round times all configurations back to back (after one
        # untimed warm-up round), and the gated statistic is the
        # *median of per-round paired ratios*: pairing log against the
        # memory run of the same round cancels slow machine-speed drift
        # (thermal throttling, noisy CI neighbours) that would skew a
        # best-of-bests comparison, and the median discards the odd
        # round where a load spike lands inside one configuration.
        rounds = []
        for round_index in range(repeats + 1):
            seconds = {
                label: _ingest_seconds(messages, kind, fsync)
                for label, kind, fsync in CONFIGS
            }
            if round_index > 0:  # round 0 is warm-up
                rounds.append(seconds)
        return rounds

    rounds = run_once(benchmark, measure)
    total = len(messages)
    best = {
        label: min(r[label] for r in rounds) for label, _kind, _fsync in CONFIGS
    }
    rows = []
    slowdowns = {}
    for label, _kind, _fsync in CONFIGS:
        paired = sorted(r[label] / r["memory"] for r in rounds)
        slowdowns[label] = slowdown = paired[len(paired) // 2]
        throughput = total / best[label]
        benchmark.extra_info[f"messages_per_sec_{label}"] = round(throughput)
        benchmark.extra_info[f"slowdown_vs_memory_{label}"] = round(slowdown, 3)
        rows.append([label, f"{throughput / 1e3:.0f}k/s", f"{slowdown:.2f}x"])
    print()
    print(format_table(["backend", "ingest", "vs memory"], rows))
    assert slowdowns["log"] <= MAX_LOG_SLOWDOWN, (
        f"log-backend batched ingest is {slowdowns['log']:.2f}x memory at "
        f"{NUM_SHARDS} shards / batch {BATCH_SIZE} "
        f"(gate: {MAX_LOG_SLOWDOWN}x)"
    )


def test_bench_log_backend_batched_ingest(benchmark):
    """Gate anchor: batch-32 ingest through four log-backed shards."""
    messages = _stream()

    def run():
        with tempfile.TemporaryDirectory() as directory:
            pipeline = _build_pipeline("log", directory, "close")
            submit = pipeline.submit
            for message in messages:
                submit(message)
            pipeline.flush()
            stored = pipeline.store.node_count()
            pipeline.store.close()
        return stored

    stored = benchmark(run)
    assert stored == len(messages)
    benchmark.extra_info["messages_per_round"] = len(messages)
    if benchmark.stats.stats.mean > 0:
        benchmark.extra_info["messages_per_sec"] = round(
            len(messages) / benchmark.stats.stats.mean
        )


def test_bench_log_recovery_replay(benchmark, tmp_path):
    """Gate anchor: replaying a journal into a fresh store (mmap reads)."""
    messages = _stream(num_requests=200, depth=25)
    registry = MetricsRegistry()
    writer = GraphStore(
        registry=registry,
        backend=LogBackend(str(tmp_path), registry=registry, fsync="never"),
    )
    writer.add_messages(messages)
    writer.close()

    def run():
        recovery_registry = MetricsRegistry()
        store = GraphStore(
            registry=recovery_registry,
            backend=LogBackend(
                str(tmp_path),
                create=False,
                fsync="never",
                registry=recovery_registry,
            ),
        )
        replayed = store.recover()
        store.backend.close()
        return replayed

    replayed = benchmark(run)
    assert replayed == len(messages)
    benchmark.extra_info["ops_per_round"] = replayed
    if benchmark.stats.stats.mean > 0:
        benchmark.extra_info["ops_per_sec"] = round(
            replayed / benchmark.stats.stats.mean
        )
