"""Robustness — the Fig. 8 ordering must not be an artifact of one seed.

Re-runs the full seven-manager Hedwig experiment under three different
workload/sampling seeds and asserts the paper's ordering (with a 5%
tolerance on the DCA-5%/10% pair, which the paper itself reports as a
1.3-node difference and which is a statistical near-tie at our scale —
see EXPERIMENTS.md).
"""

import pytest

from benchmarks.conftest import get_scenario, run_once
from repro.evalx.experiment import ExperimentConfig, run_all_managers
from repro.evalx.reporting import format_table

ORDER = (
    "DCA-10%",
    "DCA-5%",
    "DCA-20%",
    "ElasticRMI",
    "DCA-100%",
    "HTrace+CW",
    "CloudWatch",
)
SEEDS = (1, 13, 42)


def test_fig8_ordering_robust_across_seeds(benchmark):
    scenario = get_scenario("hedwig")

    def sweep():
        out = {}
        for seed in SEEDS:
            results = run_all_managers(
                scenario, config=ExperimentConfig(duration_minutes=450, seed=seed)
            )
            out[seed] = {name: results[name].agility() for name in ORDER}
        return out

    per_seed = run_once(benchmark, sweep)
    rows = [
        [str(seed)] + [f"{per_seed[seed][name]:.2f}" for name in ORDER]
        for seed in SEEDS
    ]
    print()
    print(format_table(["seed"] + list(ORDER), rows))

    for seed, agility in per_seed.items():
        for better, worse in zip(ORDER, ORDER[1:]):
            assert agility[better] <= agility[worse] * 1.05, (
                f"seed {seed}: {better} ({agility[better]:.2f}) vs "
                f"{worse} ({agility[worse]:.2f})"
            )
        # The non-tied gaps are decisive at every seed.
        assert agility["DCA-10%"] < agility["DCA-20%"]
        assert agility["DCA-20%"] < agility["ElasticRMI"]
        assert agility["DCA-100%"] < agility["CloudWatch"]
