"""Robustness — the Fig. 8 ordering must not be an artifact of one seed.

Re-runs the full seven-manager Hedwig experiment under three different
workload/sampling seeds and asserts the paper's ordering (with a 5%
tolerance on the DCA-5%/10% pair, which the paper itself reports as a
1.3-node difference and which is a statistical near-tie at our scale —
see EXPERIMENTS.md).

Also home to the fault-matrix benchmark: every seeded fault scenario
run end-to-end under the DCA manager, timed as one unit so the CI gate
catches both performance regressions in the fault hot paths and any
scenario that stops degrading gracefully.
"""

import pytest

from benchmarks.conftest import get_scenario, run_once
from repro.core.elasticity import DCAManagerConfig, StalenessPolicy
from repro.evalx.experiment import (
    ExperimentConfig,
    build_simulator,
    run_all_managers,
)
from repro.evalx.reporting import format_table
from repro.faults import FAULT_SCENARIOS, build_fault_plan
from repro.telemetry import MetricsRegistry

ORDER = (
    "DCA-10%",
    "DCA-5%",
    "DCA-20%",
    "ElasticRMI",
    "DCA-100%",
    "HTrace+CW",
    "CloudWatch",
)
SEEDS = (1, 13, 42)


def test_fig8_ordering_robust_across_seeds(benchmark):
    scenario = get_scenario("hedwig")

    def sweep():
        out = {}
        for seed in SEEDS:
            results = run_all_managers(
                scenario, config=ExperimentConfig(duration_minutes=450, seed=seed)
            )
            out[seed] = {name: results[name].agility() for name in ORDER}
        return out

    per_seed = run_once(benchmark, sweep)
    rows = [
        [str(seed)] + [f"{per_seed[seed][name]:.2f}" for name in ORDER]
        for seed in SEEDS
    ]
    print()
    print(format_table(["seed"] + list(ORDER), rows))

    for seed, agility in per_seed.items():
        for better, worse in zip(ORDER, ORDER[1:]):
            assert agility[better] <= agility[worse] * 1.05, (
                f"seed {seed}: {better} ({agility[better]:.2f}) vs "
                f"{worse} ({agility[worse]:.2f})"
            )
        # The non-tied gaps are decisive at every seed.
        assert agility["DCA-10%"] < agility["DCA-20%"]
        assert agility["DCA-20%"] < agility["ElasticRMI"]
        assert agility["DCA-100%"] < agility["CloudWatch"]


FAULT_MATRIX_DURATION = 40
FAULT_MATRIX_SEED = 7


def test_bench_fault_matrix_graceful_degradation(benchmark):
    """Run every fault scenario under DCA and assert graceful degradation.

    This is the CI gate's robustness probe (part of
    ``check_regression.py``'s ``BENCH_FILES``): the whole matrix is
    timed as one unit, so a performance regression in the fault-handling
    hot paths (retry wrapper, delayed-delivery queue, abandonment sweep,
    staleness detector) shows up as a throughput drop, while the
    assertions catch a scenario that starts crashing or stops making
    progress.
    """
    scenario = get_scenario("hedwig")

    def matrix():
        out = {}
        for fault in sorted(FAULT_SCENARIOS):
            registry = MetricsRegistry()
            simulator = build_simulator(
                scenario,
                "DCA-10%",
                ExperimentConfig(
                    duration_minutes=FAULT_MATRIX_DURATION, seed=FAULT_MATRIX_SEED
                ),
                registry=registry,
                fault_plan=build_fault_plan(fault, seed=FAULT_MATRIX_SEED),
                path_timeout_minutes=5.0,
                manager_config=DCAManagerConfig(
                    sampling_rate=0.10, staleness=StalenessPolicy()
                ),
            )
            out[fault] = (simulator.run(), registry)
        return out

    per_fault = run_once(benchmark, matrix)

    def _count(registry, name):
        metric = registry.get(name)
        return 0 if metric is None else metric.value

    rows = [
        [
            fault,
            f"{result.sla_violation_percent():.1f}",
            f"{_count(registry, 'tracker.paths_completed'):.0f}",
            f"{_count(registry, 'tracker.paths_abandoned'):.0f}",
            f"{_count(registry, 'tracker.dead_letters'):.0f}",
            f"{_count(registry, 'elasticity.fallback_engagements'):.0f}",
        ]
        for fault, (result, registry) in sorted(per_fault.items())
    ]
    print()
    print(
        format_table(
            ["scenario", "SLA viol %", "completed", "abandoned", "dead", "fallbacks"],
            rows,
        )
    )

    assert sorted(per_fault) == sorted(FAULT_SCENARIOS)
    for fault, (result, registry) in per_fault.items():
        # Graceful degradation: the run finishes, the tracker keeps
        # closing paths, and the service is never *fully* down.
        assert result.sla_violation_percent() < 100.0, fault
        assert _count(registry, "tracker.paths_completed") > 0, fault
