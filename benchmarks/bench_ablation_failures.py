"""Ablation — elasticity under node churn (failure injection).

The paper's applications are replicated for fault tolerance
(Section II-A); this ablation goes beyond the paper and asks whether
DCA's advantage survives continuous node failures: every ready node
crashes with 2% probability per minute, and managers must detect the
lost capacity through their monitoring signals and re-provision it.
"""

import pytest

from benchmarks.conftest import get_scenario, run_once
from repro.evalx.experiment import ExperimentConfig, build_simulator
from repro.evalx.reporting import format_table
from repro.sim.engine import SimulationConfig

DURATION = 300
FAILURE_RATE = 0.02
MANAGERS = ("CloudWatch", "ElasticRMI", "DCA-10%")


def _run(app_name, manager, failure_rate):
    scenario = get_scenario(app_name)
    config = ExperimentConfig(
        duration_minutes=DURATION,
        sim=SimulationConfig(
            duration_minutes=DURATION,
            node_failure_rate_per_min=failure_rate,
            failure_seed=11,
        ),
    )
    sim = build_simulator(scenario, manager, config)
    result = sim.run()
    return result, sim.nodes_failed_total


def test_ablation_managers_under_churn(benchmark):
    def sweep():
        out = {}
        for manager in MANAGERS:
            calm, _ = _run("hedwig", manager, 0.0)
            churn, failed = _run("hedwig", manager, FAILURE_RATE)
            out[manager] = (calm, churn, failed)
        return out

    results = run_once(benchmark, sweep)
    rows = []
    for manager, (calm, churn, failed) in results.items():
        rows.append(
            [
                manager,
                f"{calm.agility():.2f}",
                f"{churn.agility():.2f}",
                f"{calm.sla_violation_percent():.2f}%",
                f"{churn.sla_violation_percent():.2f}%",
                str(failed),
            ]
        )
    print()
    print(
        format_table(
            ["manager", "agility", "agility (churn)", "SLA", "SLA (churn)", "nodes failed"],
            rows,
        )
    )

    for manager, (calm, churn, failed) in results.items():
        assert failed > 50, f"{manager}: churn did not materialise"
        # Churn must degrade SLA for every manager.
        assert churn.sla_violation_percent() >= calm.sla_violation_percent() * 0.9
    # The path-aware manager must not collapse under churn (the black-box
    # baselines may: CloudWatch's uniform re-provisioning replaces failed
    # hot-tier nodes with cold-tier ones).
    assert results["DCA-10%"][1].sla_violation_percent() < 35.0

    # DCA's precision advantage survives churn.
    assert (
        results["DCA-10%"][1].agility() < results["CloudWatch"][1].agility()
    )
    assert (
        results["DCA-10%"][1].sla_violation_percent()
        < results["CloudWatch"][1].sla_violation_percent()
    )


def test_churn_turns_into_shortage_not_excess(benchmark):
    """Failures remove paid-for capacity, so agility's churn penalty shows
    up as shortage/violations, not as idle machines."""
    from repro.evalx.agility import breakdown

    def measure():
        calm, _ = _run("hedwig", "DCA-10%", 0.0)
        churn, _ = _run("hedwig", "DCA-10%", FAILURE_RATE)
        return breakdown(calm), breakdown(churn)

    calm_b, churn_b = run_once(benchmark, measure)
    assert churn_b.mean_shortage >= calm_b.mean_shortage
