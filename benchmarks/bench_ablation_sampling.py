"""Ablation (RQ4) — fine-grained sampling-rate sweep.

The paper evaluates {5, 10, 20, 100}% and finds "sampling around the 10%
threshold seems most effective".  This ablation sweeps a finer grid and
locates the sweet spot between profile fidelity (too little sampling →
stale/noisy causal probabilities) and runtime overhead (too much →
excess capacity provisioned for instrumentation).
"""

import pytest

from benchmarks.conftest import get_scenario, run_once
from repro.core.elasticity import DCAElasticityManager, DCAManagerConfig, detect_serialization_suspects
from repro.evalx.experiment import ExperimentConfig, build_simulator
from repro.evalx.reporting import format_table
from repro.sim.engine import ClusterSimulator, DCABundle, SimulationConfig
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.patterns import ScaledPattern, paper_pattern

RATES = (0.02, 0.05, 0.10, 0.20, 0.50, 1.0)
DURATION = 300  # enough to cover several mix phases


def _run_rate(scenario, rate, seed=7):
    bundle = DCABundle.create(
        scenario.app,
        sampling_rate=rate,
        overhead_model=scenario.overhead_model,
        num_front_ends=scenario.num_front_ends,
        seed=seed,
    )
    low, high = scenario.magnitudes
    generator = WorkloadGenerator(
        ScaledPattern(paper_pattern, low, high), scenario.mix, scenario.classes, seed=seed
    )
    manager = DCAElasticityManager(
        profiler=bundle.profiler,
        machine=scenario.machine,
        config=DCAManagerConfig(sampling_rate=rate),
        serialization_suspects=detect_serialization_suspects(scenario.app),
    )
    sim = ClusterSimulator(
        scenario.app,
        generator,
        dict(scenario.deployments),
        scenario.machine,
        manager,
        config=SimulationConfig(duration_minutes=DURATION),
        dca=bundle,
    )
    return sim.run()


def test_ablation_sampling_sweep(benchmark):
    scenario = get_scenario("hedwig")
    results = run_once(benchmark, lambda: {rate: _run_rate(scenario, rate) for rate in RATES})
    rows = [
        [
            f"{int(rate * 100)}%",
            f"{res.agility():.2f}",
            f"{res.sla_violation_percent():.2f}%",
            f"{100 * res.overhead_mean():.2f}%",
        ]
        for rate, res in sorted(results.items())
    ]
    print()
    print(format_table(["sampling", "agility", "SLA violations", "overhead"], rows))

    agility = {rate: res.agility() for rate, res in results.items()}
    # The sweet spot sits at low-to-mid sampling (the paper's ~10%); the
    # 5–10% band is within a few percent of the sweep minimum.
    best = min(agility, key=agility.get)
    assert best <= 0.20, f"sweet spot unexpectedly high: {best}"
    assert agility[0.10] <= min(agility.values()) * 1.10
    # Full tracking is dominated by mid-rate sampling (RQ2/RQ3).
    assert agility[1.0] > agility[0.10]
    # Heavy sampling monotonically worsens agility past the sweet spot.
    assert agility[0.50] > agility[0.20] * 0.95


def test_ablation_overhead_monotone_in_rate(benchmark):
    scenario = get_scenario("hedwig")
    results = run_once(
        benchmark, lambda: {rate: _run_rate(scenario, rate) for rate in (0.05, 0.20, 1.0)}
    )
    overheads = [results[r].overhead_mean() for r in (0.05, 0.20, 1.0)]
    assert overheads == sorted(overheads)
