"""Shard/batch throughput: the sharded store behind the write pipeline.

The batched write pipeline amortises its per-flush fixed costs (flush
timing, batch telemetry, buffer management, retry bookkeeping) across
the batch, so edge-ingest throughput must rise with the batch size at
any shard count.  This suite sweeps shards × batch size over one fixed
synthetic message stream and pins the claim CI gates on: batched ingest
(batch >= 32) is at least 1.5x the throughput of flush-per-message
ingest (batch = 1) at the same shard count.

Two plain benchmarks (unbatched vs batched ingest at four shards) feed
the regression gate with stable single-config timings alongside the
sweep.
"""

import gc
import time

from benchmarks.bench_micro_tracker import _chain_requests
from benchmarks.conftest import run_once
from repro.core.causal_graph import DirectCausalityTracker
from repro.evalx.reporting import format_table
from repro.graphstore import BatchedWritePipeline, GraphStore, ShardedGraphStore
from repro.profiling.profiler import CausalPathProfiler
from repro.telemetry import MetricsRegistry

SHARD_COUNTS = (1, 2, 4, 8)
BATCH_SIZES = (1, 32, 256)
#: CI-gated floor: batched ingest must beat flush-per-message by this
#: factor at the best batch size >= 32 (measured headroom is ~1.6-2x).
MIN_BATCH_SPEEDUP = 1.5


def _stream(num_requests=400, depth=25):
    batches = _chain_requests(num_requests=num_requests, depth=depth)
    return [message for batch in batches for message in batch]


def _build_pipeline(num_shards, batch_size):
    registry = MetricsRegistry()
    if num_shards > 1:
        store = ShardedGraphStore(num_shards=num_shards, registry=registry)
    else:
        store = GraphStore(registry=registry)
    return BatchedWritePipeline(store, batch_size=batch_size, registry=registry)


def _ingest_seconds(messages, num_shards, batch_size):
    """Wall time to push ``messages`` through one fresh pipeline.

    Collection runs before (not during) the timed region: the sweep
    compares per-flush fixed costs a few microseconds apart, and a GC
    pause landing inside one configuration's run would swamp them.
    """
    pipeline = _build_pipeline(num_shards, batch_size)
    submit = pipeline.submit
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        for message in messages:
            submit(message)
        pipeline.flush()
        return time.perf_counter() - start
    finally:
        gc.enable()


def test_bench_shard_batch_sweep(benchmark, repeats=5):
    """Shards 1/2/4/8 × batch 1/32/256 over one fixed stream."""
    messages = _stream()

    def measure():
        # Interleave the configurations across best-of-``repeats`` rounds
        # (plus one untimed warm-up round) so a load spike on the runner
        # hits every configuration equally instead of sinking whichever
        # block it lands on.
        grid = {}
        for round_index in range(repeats + 1):
            for num_shards in SHARD_COUNTS:
                for batch_size in BATCH_SIZES:
                    seconds = _ingest_seconds(messages, num_shards, batch_size)
                    if round_index == 0:
                        continue  # warm-up
                    key = (num_shards, batch_size)
                    grid[key] = min(grid.get(key, float("inf")), seconds)
        return grid

    grid = run_once(benchmark, measure)
    total = len(messages)
    rows = []
    for num_shards in SHARD_COUNTS:
        base = grid[(num_shards, 1)]
        row = [str(num_shards)]
        for batch_size in BATCH_SIZES:
            seconds = grid[(num_shards, batch_size)]
            throughput = total / seconds
            benchmark.extra_info[
                f"messages_per_sec_shards{num_shards}_batch{batch_size}"
            ] = round(throughput)
            row.append(f"{throughput / 1e3:.0f}k/s ({base / seconds:.2f}x)")
        rows.append(row)
    print()
    print(format_table(["shards"] + [f"batch={b}" for b in BATCH_SIZES], rows))
    for num_shards in SHARD_COUNTS:
        base = grid[(num_shards, 1)]
        best_speedup = max(
            base / grid[(num_shards, batch_size)]
            for batch_size in BATCH_SIZES
            if batch_size >= 32
        )
        assert best_speedup >= MIN_BATCH_SPEEDUP, (
            f"batched ingest at {num_shards} shard(s) only reached "
            f"{best_speedup:.2f}x over batch=1 (need {MIN_BATCH_SPEEDUP}x)"
        )


def _drive_pipeline(benchmark, num_shards, batch_size):
    messages = _stream()

    def run():
        pipeline = _build_pipeline(num_shards, batch_size)
        submit = pipeline.submit
        for message in messages:
            submit(message)
        pipeline.flush()
        return pipeline.store.node_count()

    stored = benchmark(run)
    assert stored == len(messages)
    benchmark.extra_info["messages_per_round"] = len(messages)
    if benchmark.stats.stats.mean > 0:
        benchmark.extra_info["messages_per_sec"] = round(
            len(messages) / benchmark.stats.stats.mean
        )


def test_bench_pipeline_unbatched_ingest(benchmark):
    """Gate anchor: flush-per-message ingest through four shards."""
    _drive_pipeline(benchmark, num_shards=4, batch_size=1)


def test_bench_pipeline_batched_ingest(benchmark):
    """Gate anchor: batch-32 ingest through four shards."""
    _drive_pipeline(benchmark, num_shards=4, batch_size=32)


def test_bench_sharded_tracker_end_to_end(benchmark):
    """Full tracker loop (observe → complete → evict) on a sharded,
    batched store: the production configuration of the write path."""
    batches = _chain_requests(num_requests=40, depth=25)
    registry = MetricsRegistry()
    store = ShardedGraphStore(num_shards=4, registry=registry)
    profiler = CausalPathProfiler({}, registry=registry)
    tracker = DirectCausalityTracker(
        profiler, store=store, registry=registry, write_batch_size=32
    )
    total = sum(len(batch) for batch in batches)

    def run():
        for batch in batches:
            tracker.observe_all(batch)
        return tracker.completed_paths

    benchmark(run)
    assert tracker.completed_paths >= 40
    assert store.node_count() == 0  # every graph evicted
    benchmark.extra_info["messages_per_round"] = total
    if benchmark.stats.stats.mean > 0:
        benchmark.extra_info["messages_per_sec"] = round(
            total / benchmark.stats.stats.mean
        )
