"""Shared fixtures for the benchmark harness.

The paper's figure/table benchmarks re-run the full 450-minute Fig. 7
workload for every manager; those simulations are deterministic, so the
session-scoped fixtures below run each (app × manager) combination once
and share the results across benchmark modules.

Run with::

    pytest benchmarks/ --benchmark-only

Each bench prints the regenerated table/figure rows (use ``-s`` to see
them inline; they are also summarised in EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro.apps.catalog import AppScenario, load_scenario
from repro.evalx.experiment import ExperimentConfig, run_all_managers
from repro.sim.metrics import SimulationResult
from repro.telemetry import get_registry

#: Duration of the paper's experimental run.
FULL_RUN = 450


_scenario_cache: Dict[str, AppScenario] = {}
_results_cache: Dict[str, Dict[str, SimulationResult]] = {}


def get_scenario(name: str) -> AppScenario:
    if name not in _scenario_cache:
        _scenario_cache[name] = load_scenario(name)
    return _scenario_cache[name]


def get_full_results(name: str) -> Dict[str, SimulationResult]:
    """All seven managers over the full 450-minute run (cached)."""
    if name not in _results_cache:
        _results_cache[name] = run_all_managers(
            get_scenario(name), config=ExperimentConfig(duration_minutes=FULL_RUN)
        )
    return _results_cache[name]


@pytest.fixture(scope="session")
def marketcetera_scenario():
    return get_scenario("marketcetera")


@pytest.fixture(scope="session")
def hedwig_scenario():
    return get_scenario("hedwig")


@pytest.fixture(scope="session")
def zookeeper_scenario():
    return get_scenario("zookeeper")


@pytest.fixture(scope="session")
def marketcetera_results():
    return get_full_results("marketcetera")


@pytest.fixture(scope="session")
def hedwig_results():
    return get_full_results("hedwig")


@pytest.fixture(scope="session")
def zookeeper_results():
    return get_full_results("zookeeper")


@pytest.fixture(autouse=True)
def _telemetry_snapshot(request):
    """Attach a telemetry snapshot to every benchmark result.

    The default registry is zeroed before each benchmark and its
    snapshot is stored in ``benchmark.extra_info`` afterwards, so the
    ``BENCH_*.json`` perf trajectories carry the run's internal counters
    (graph-store writes, BFS hops, profiler recordings, …) alongside
    wall-clock stats.  CI's regression gate reads both.
    """
    get_registry().reset()
    yield
    benchmark = request.node.funcargs.get("benchmark")
    if benchmark is not None:
        benchmark.extra_info["telemetry"] = get_registry().snapshot()


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The figure benchmarks are deterministic minute-by-minute simulations;
    repeating them would only multiply wall-clock time without adding
    statistical information.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
